//! Hand-rolled argument parsing (no CLI crates in the allowed set).

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  psr figure <1a|1b|2a|2b|2c|lap-vs-exp|lemma3|smoothing> [options]
  psr claims [options]            re-derive the §7.2 headline claims
  psr bounds <example|theorems|planner>
  psr dataset <wiki|twitter> [options]
  psr recommend --target <id> [--target <id> ...] [recommend options]
  psr serve --requests <path> [serve options]
  psr daemon [daemon options]     always-on serving over generated streams
  psr attack [attack options]     run the edge-inference adversaries
  psr frontier [frontier options] sweep the privacy-utility frontier from
                                  a resumable experiment plan
  psr build-snapshot --out <path> [build-snapshot options]
                                  build a compressed PSRZ graph snapshot

recommend options:
  --input <path>    SNAP edge list to serve from (default: generated preset)
  --directed        treat the input file as directed
  --preset <name>   wiki|twitter when no --input (default wiki)
  --utility <name>  common-neighbors|weighted-paths (default common-neighbors)
  --gamma <f64>     weighted-paths damping (default 0.005)
  --mechanism <m>   exponential|laplace (default exponential)
  --epsilon <f64>   privacy budget (default 1.0)

serve options (batch serving over a worker pool):
  --requests <path> JSON array of {\"target\": N, \"k\": M} requests (required)
  --mutations <path> JSON array of mutation batches (arrays of
                    {\"op\": \"Insert\"|\"Delete\", \"u\": N, \"v\": M});
                    batch i is applied after request chunk i, opening a new
                    graph epoch for the remaining chunks
  --input, --directed, --preset, --scale, --utility, --gamma   as for recommend
                    (--preset also accepts livejournal here)
  --backend <b>     csr|compressed graph backing (default csr; compressed
                    round-trips the graph through the PSRZ codec in RAM)
  --snapshot <path> serve straight from a PSRZ snapshot built with
                    build-snapshot (mmap-backed; implies
                    --backend compressed, excludes --input/--preset)
  --epsilon <f64>   privacy cost of one request, split over its k slots
                    (default 1.0)
  --budget <f64>    total ε each target may spend before the service
                    refuses it (default 10.0)
  --engine <name>   peel|gumbel top-k sampler; same distribution, gumbel
                    is the one-pass fast path (default gumbel)
  --threads <n>     worker threads (default: all cores)
  --seed <u64>      master seed (default 42)
  --json <path>     write the JSON outcome report here instead of stdout
  --metrics-out <path>  enable telemetry and write the metrics snapshot
                    (counters, gauges, latency histograms) as JSON here;
                    the report embeds the same snapshot
  --trace <path>    enable telemetry and write the structured trace ring
                    as JSONL here (one event per line, sequence-ordered)

daemon options (always-on serving over generated request/mutation streams):
  --input, --directed, --preset, --scale, --utility, --gamma, --backend,
  --snapshot, --epsilon, --budget, --engine, --threads, --seed, --json,
  --metrics-out, --trace
                    as for serve
  --request-events <n>   requests to generate (default 256)
  --mutation-events <n>  edge mutations to interleave (default 32)
  --insert-fraction <f>  insert share of mutations in [0,1] (default 0.7)
  --k <n>           slots per generated request (default 5)
  --batch <n>       requests per dispatched batch (default 16)
  --mutation-batch <n>   mutations per apply_mutations call (default 8)
  --queue <n>       bounded job-queue capacity; ingestion blocks when
                    full (backpressure) (default 8)
  --ledger <path>   persistent budget journal; replayed on startup so
                    ε spend survives restarts (default: in-memory)
  --rate <f64>      replay pacing in stream ticks per second
                    (default: no pacing, drain as fast as possible)
  --heartbeat <secs>  print an ingestion-progress line (events ingested,
                    batches drained, ETA) to stderr every <secs> seconds

attack options (empirical edge- and node-inference adversaries):
  --input, --directed, --scale, --seed  as for recommend
  --preset <name>   karate|wiki|twitter|livejournal when no --input
                    (default karate)
  --backend <b>     csr|compressed — compressed attacks the graph after a
                    PSRZ encode->open->materialise round trip, proving the
                    attack surface is backing-oblivious (default csr)
  --snapshot <path> attack the graph stored in a PSRZ snapshot (implies
                    --backend compressed, excludes --input/--preset)
  --utility <name>  common-neighbors|weighted-paths (default common-neighbors)
  --gamma <f64>     weighted-paths damping (default 0.005)
  --engine <name>   peel|gumbel top-k sampler for exponential observations
                    (default gumbel)
  --adjacency <a>   edge|node — Definition 1's single-edge worlds or
                    Appendix A's whole-neighbourhood rewire (default edge)
  --mechanism <m>   exponential|laplace|smoothing|non-private
                    (default exponential)
  --epsilon <f64>   per-observation ε for exponential/laplace (default 0.5)
  --smoothing-x <f64>  smoothing mixing weight x in [0,1) (default 0.05)
  --adversary <a>   reconstruction|mia|frequency|all (default all)
  --edge <u,v>      the secret edge, edge adjacency only (default: search
                    for a pair whose insertion flips a non-private answer)
  --node <v>        the rewired node, node adjacency only (default: search
                    for a rewire that flips a non-private answer; the
                    replacement neighbourhood is the disjoint default)
  --observer-cap <n>  max observers watched (default 4)
  --rounds <n>      request batches per trial (default 4)
  --k <n>           slots per request; must be 1 for laplace/smoothing
                    (default 1)
  --trials <n>      Monte-Carlo trials per world (default 48)
  --epoch <style>   edge adjacency: static|insert|delete (insert/delete
                    apply the secret edge mid-stream); node adjacency:
                    static|rewire (rewire applies the whole batch
                    mid-stream through apply_mutations) (default static)
  --prefix-rounds <n>  rounds before the mutation epoch (default 1)
  --threads <n>     harness worker threads (default: all cores)
  --json <path>     write the JSON attack report here instead of stdout

frontier options (orchestrated privacy-utility sweep lab):
  --plan <path>     experiment-plan JSON declaring the sweep grid
                    (default: the built-in toy plan; see --write-plan)
  --write-plan <path>  write the built-in toy plan as an editable
                    template to <path> and exit
  --out <path>      where frontier.json is written once the sweep is
                    complete (default frontier.json)
  --journal <path>  append-only results journal for checkpoint/resume
                    (default: <out> with a .journal extension)
  --no-journal      compute in memory without checkpointing (no resume)
  --max-cells <n>   stop after computing n new cells; the sweep reports
                    itself incomplete and the same command resumes it
  --threads <n>     worker threads (default: all cores); any value
                    produces a byte-identical report
  --heartbeat <secs>  print a sweep-progress line (cells done, ETA) to
                    stderr every <secs> seconds
  --metrics-out <path>  enable telemetry and write the metrics snapshot
                    (fsync latency, resume counters) as JSON here
  --trace <path>    enable telemetry and write per-cell start/finish/
                    resume events as JSONL here

build-snapshot options (out-of-core PSRZ snapshot builder):
  --out <path>      where to write the snapshot (required)
  --input <path>    SNAP edge list to encode (default: generated preset)
  --directed        treat the input file as directed
  --preset <name>   wiki|twitter|livejournal when no --input
                    (default livejournal; livejournal streams R-MAT arcs
                    through the out-of-core builder and never materialises
                    the graph in RAM)
  --scale <0..1]    dataset scale (default 1.0)
  --seed <u64>      generator seed (default 42)
  --shards <n>      degree-balanced shard count in the manifest (default 8)
  --arc-budget <n>  arcs buffered in RAM before spilling a sorted run
                    (16 bytes each; default 4194304 = 64 MiB)
  --json <path>     write the build stats as JSON here instead of stdout

options:
  --scale <0..1]   dataset scale relative to the paper (default 1.0)
  --seed <u64>     master seed (default 42)
  --laplace        also evaluate the Laplace mechanism (slower)
  --trials <u32>   Laplace Monte-Carlo trials (default 1000)
  --threads <n>    worker threads (default: all cores)
  --json <path>    also write the result as JSON";

/// Utility functions every serving/attack surface accepts.
const UTILITIES: [&str; 2] = ["common-neighbors", "weighted-paths"];
/// Top-k engines every serving/attack surface accepts.
const ENGINES: [&str; 2] = ["peel", "gumbel"];
/// Mechanisms the attack harness (and frontier sweeps) cover.
const ATTACK_MECHANISMS: [&str; 4] = ["exponential", "laplace", "smoothing", "non-private"];
/// Generated presets the batch/stream serving surfaces accept.
const SERVING_PRESETS: [&str; 3] = ["wiki", "twitter", "livejournal"];
/// Presets the attack harness accepts (karate is the demo graph).
const ATTACK_PRESETS: [&str; 4] = ["karate", "wiki", "twitter", "livejournal"];

/// Validated `--utility` parse shared by `recommend`, `serve`, `daemon`,
/// `attack` and `frontier` — one allow-list instead of a copy per
/// subcommand.
fn parse_utility(raw: &str) -> Result<String, String> {
    if !UTILITIES.contains(&raw) {
        return Err(format!("unknown utility {raw:?}"));
    }
    Ok(raw.to_owned())
}

/// Validated `--engine` parse shared by the same subcommands.
fn parse_engine(raw: &str) -> Result<String, String> {
    if !ENGINES.contains(&raw) {
        return Err(format!("unknown top-k engine {raw:?} (expected peel|gumbel)"));
    }
    Ok(raw.to_owned())
}

/// Validated `--mechanism` parse against a caller-chosen allow-list
/// (`recommend` serves only exponential/laplace; `attack` and `frontier`
/// cover the full panel).
fn parse_mechanism(raw: &str, allowed: &[&str]) -> Result<String, String> {
    if !allowed.contains(&raw) {
        return Err(format!("unknown mechanism {raw:?} (expected one of {allowed:?})"));
    }
    Ok(raw.to_owned())
}

/// Validated `--preset` parse against a caller-chosen allow-list.
fn parse_preset(raw: &str, allowed: &[&str]) -> Result<String, String> {
    if !allowed.contains(&raw) {
        return Err(format!("unknown preset {raw:?} (expected one of {allowed:?})"));
    }
    Ok(raw.to_owned())
}

/// Validated `--epsilon` parse: a positive, finite budget.
fn parse_epsilon(raw: &str) -> Result<f64, String> {
    let epsilon: f64 = raw.parse().map_err(|e| format!("--epsilon: {e}"))?;
    if !(epsilon > 0.0 && epsilon.is_finite()) {
        return Err("--epsilon must be positive".into());
    }
    Ok(epsilon)
}

/// Validated `--heartbeat` parse: a positive whole number of seconds.
fn parse_heartbeat(raw: &str) -> Result<u64, String> {
    let secs: u64 = raw.parse().map_err(|e| format!("--heartbeat: {e}"))?;
    if secs == 0 {
        return Err("--heartbeat must be at least 1 second".into());
    }
    Ok(secs)
}

/// Validated `--scale` parse: a fraction of the paper-scale dataset.
fn parse_scale(raw: &str) -> Result<f64, String> {
    let scale: f64 = raw.parse().map_err(|e| format!("--scale: {e}"))?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err("--scale must be in (0, 1]".into());
    }
    Ok(scale)
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `psr figure <id> …`
    Figure {
        /// Figure identifier.
        id: String,
        /// Common options.
        opts: Options,
    },
    /// `psr claims …`
    Claims {
        /// Common options.
        opts: Options,
    },
    /// `psr bounds <topic>`
    Bounds {
        /// Which bound table to print.
        topic: String,
    },
    /// `psr dataset <name> …`
    Dataset {
        /// Preset name.
        name: String,
        /// Common options.
        opts: Options,
    },
    /// `psr recommend …`
    Recommend {
        /// Serving options.
        opts: RecommendOptions,
    },
    /// `psr serve …`
    Serve {
        /// Batch-serving options.
        opts: ServeOptions,
    },
    /// `psr attack …`
    Attack {
        /// Edge-inference options.
        opts: AttackOptions,
    },
    /// `psr daemon …`
    Daemon {
        /// Stream-serving options.
        opts: DaemonOptions,
    },
    /// `psr build-snapshot …`
    BuildSnapshot {
        /// Snapshot-builder options.
        opts: BuildSnapshotOptions,
    },
    /// `psr frontier …`
    Frontier {
        /// Sweep-lab options.
        opts: FrontierOptions,
    },
}

/// Options for the `frontier` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierOptions {
    /// Experiment-plan JSON path (None = the built-in toy plan).
    pub plan: Option<String>,
    /// Where the frontier report is written on completion.
    pub out: String,
    /// Results-journal path (None = derived from `out`).
    pub journal: Option<String>,
    /// Disable checkpointing entirely.
    pub no_journal: bool,
    /// Stop after computing this many new cells.
    pub max_cells: Option<usize>,
    /// Worker threads (None = all cores).
    pub threads: Option<usize>,
    /// Write the built-in toy plan to this path and exit.
    pub write_plan: Option<String>,
    /// Stderr progress-line period in seconds (None = silent).
    pub heartbeat: Option<u64>,
    /// Telemetry metrics-snapshot path (None = telemetry stays off
    /// unless `--trace` enables it).
    pub metrics_out: Option<String>,
    /// Telemetry trace JSONL path (None = no trace export).
    pub trace: Option<String>,
}

impl Default for FrontierOptions {
    fn default() -> Self {
        FrontierOptions {
            plan: None,
            out: "frontier.json".to_owned(),
            journal: None,
            no_journal: false,
            max_cells: None,
            threads: None,
            write_plan: None,
            heartbeat: None,
            metrics_out: None,
            trace: None,
        }
    }
}

fn parse_frontier(rest: &[String]) -> Result<FrontierOptions, String> {
    let mut opts = FrontierOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--plan" => opts.plan = Some(value("--plan")?.clone()),
            "--out" => opts.out = value("--out")?.clone(),
            "--journal" => opts.journal = Some(value("--journal")?.clone()),
            "--no-journal" => opts.no_journal = true,
            "--max-cells" => {
                opts.max_cells =
                    Some(value("--max-cells")?.parse().map_err(|e| format!("--max-cells: {e}"))?);
                if opts.max_cells == Some(0) {
                    return Err("--max-cells must be at least 1".into());
                }
            }
            "--threads" => {
                opts.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--write-plan" => opts.write_plan = Some(value("--write-plan")?.clone()),
            "--heartbeat" => opts.heartbeat = Some(parse_heartbeat(value("--heartbeat")?)?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?.clone()),
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            other => return Err(format!("unknown frontier option {other:?}")),
        }
    }
    if opts.no_journal && opts.journal.is_some() {
        return Err("--no-journal and --journal are mutually exclusive".into());
    }
    if opts.no_journal && opts.max_cells.is_some() {
        return Err("--max-cells needs a journal to resume from (drop --no-journal)".into());
    }
    Ok(opts)
}

/// Options for the `build-snapshot` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSnapshotOptions {
    /// Output snapshot path.
    pub out: String,
    /// SNAP edge-list path (None = preset).
    pub input: Option<String>,
    /// Whether the input file is directed.
    pub directed: bool,
    /// Preset name when no input file.
    pub preset: String,
    /// Dataset scale for presets.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Degree-balanced shard count.
    pub shards: usize,
    /// Arcs buffered in RAM before spilling a sorted run.
    pub arc_budget: usize,
    /// Optional JSON stats path (stdout when absent).
    pub json: Option<String>,
}

impl Default for BuildSnapshotOptions {
    fn default() -> Self {
        BuildSnapshotOptions {
            out: String::new(),
            input: None,
            directed: false,
            preset: "livejournal".to_owned(),
            scale: 1.0,
            seed: 42,
            shards: 8,
            arc_budget: 4 * 1024 * 1024,
            json: None,
        }
    }
}

fn parse_build_snapshot(rest: &[String]) -> Result<BuildSnapshotOptions, String> {
    let mut opts = BuildSnapshotOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--out" => opts.out = value("--out")?.clone(),
            "--input" => opts.input = Some(value("--input")?.clone()),
            "--directed" => opts.directed = true,
            "--preset" => opts.preset = parse_preset(value("--preset")?, &SERVING_PRESETS)?,
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--shards" => {
                opts.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
                if opts.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--arc-budget" => {
                opts.arc_budget =
                    value("--arc-budget")?.parse().map_err(|e| format!("--arc-budget: {e}"))?;
                if opts.arc_budget == 0 {
                    return Err("--arc-budget must be at least 1".into());
                }
            }
            "--json" => opts.json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown build-snapshot option {other:?}")),
        }
    }
    if opts.out.is_empty() {
        return Err("build-snapshot: --out <path> is required".into());
    }
    Ok(opts)
}

/// Validates a `--backend` value and resolves the `--snapshot` implication
/// shared by `serve`, `daemon` and `attack`: a snapshot path forces the
/// compressed backend and excludes `--input` (the snapshot *is* the
/// input).
fn resolve_backend(
    backend: &mut String,
    backend_explicit: bool,
    snapshot: Option<&str>,
    input: Option<&str>,
) -> Result<(), String> {
    if !["csr", "compressed"].contains(&backend.as_str()) {
        return Err(format!("unknown backend {backend:?} (expected csr|compressed)"));
    }
    if snapshot.is_some() {
        if input.is_some() {
            return Err("--snapshot and --input are mutually exclusive".into());
        }
        if backend_explicit && backend == "csr" {
            return Err("--snapshot requires the compressed backend (drop --backend csr)".into());
        }
        *backend = "compressed".to_owned();
    }
    Ok(())
}

/// Options for the `daemon` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonOptions {
    /// SNAP edge-list path (None = preset).
    pub input: Option<String>,
    /// Whether the input file is directed.
    pub directed: bool,
    /// Preset name when no input file.
    pub preset: String,
    /// Dataset scale for presets.
    pub scale: f64,
    /// Graph backing: csr|compressed.
    pub backend: String,
    /// PSRZ snapshot to serve from (implies the compressed backend).
    pub snapshot: Option<String>,
    /// Utility function name.
    pub utility: String,
    /// Weighted-paths damping.
    pub gamma: f64,
    /// Privacy cost ε of one request.
    pub epsilon: f64,
    /// Total ε each target may spend.
    pub budget: f64,
    /// Top-k engine name: peel|gumbel.
    pub engine: String,
    /// Requests to generate.
    pub request_events: usize,
    /// Edge mutations to interleave.
    pub mutation_events: usize,
    /// Insert share of generated mutations.
    pub insert_fraction: f64,
    /// Slots per generated request.
    pub k: usize,
    /// Requests per dispatched batch.
    pub batch: usize,
    /// Mutations per `apply_mutations` call.
    pub mutation_batch: usize,
    /// Bounded job-queue capacity.
    pub queue: usize,
    /// Persistent budget-journal path (None = in-memory).
    pub ledger: Option<String>,
    /// Replay pacing in stream ticks per second (None = no pacing).
    pub rate: Option<f64>,
    /// Worker threads (None = all cores).
    pub threads: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Optional JSON report path (stdout when absent).
    pub json: Option<String>,
    /// Stderr progress-line period in seconds (None = silent).
    pub heartbeat: Option<u64>,
    /// Telemetry metrics-snapshot path (None = telemetry stays off
    /// unless `--trace` enables it).
    pub metrics_out: Option<String>,
    /// Telemetry trace JSONL path (None = no trace export).
    pub trace: Option<String>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        DaemonOptions {
            input: None,
            directed: false,
            preset: "wiki".to_owned(),
            scale: 1.0,
            backend: "csr".to_owned(),
            snapshot: None,
            utility: "common-neighbors".to_owned(),
            gamma: 0.005,
            epsilon: 1.0,
            budget: 10.0,
            engine: "gumbel".to_owned(),
            request_events: 256,
            mutation_events: 32,
            insert_fraction: 0.7,
            k: 5,
            batch: 16,
            mutation_batch: 8,
            queue: 8,
            ledger: None,
            rate: None,
            threads: None,
            seed: 42,
            json: None,
            heartbeat: None,
            metrics_out: None,
            trace: None,
        }
    }
}

fn parse_daemon(rest: &[String]) -> Result<DaemonOptions, String> {
    let mut opts = DaemonOptions::default();
    let mut backend_explicit = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--input" => opts.input = Some(value("--input")?.clone()),
            "--directed" => opts.directed = true,
            "--preset" => opts.preset = parse_preset(value("--preset")?, &SERVING_PRESETS)?,
            "--backend" => {
                opts.backend = value("--backend")?.clone();
                backend_explicit = true;
            }
            "--snapshot" => opts.snapshot = Some(value("--snapshot")?.clone()),
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--utility" => opts.utility = parse_utility(value("--utility")?)?,
            "--gamma" => {
                opts.gamma = value("--gamma")?.parse().map_err(|e| format!("--gamma: {e}"))?
            }
            "--epsilon" => opts.epsilon = parse_epsilon(value("--epsilon")?)?,
            "--budget" => {
                opts.budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?;
                if !(opts.budget > 0.0 && opts.budget.is_finite()) {
                    return Err("--budget must be positive and finite".into());
                }
            }
            "--engine" => opts.engine = parse_engine(value("--engine")?)?,
            "--request-events" => {
                opts.request_events = value("--request-events")?
                    .parse()
                    .map_err(|e| format!("--request-events: {e}"))?;
                if opts.request_events == 0 {
                    return Err("--request-events must be at least 1".into());
                }
            }
            "--mutation-events" => {
                opts.mutation_events = value("--mutation-events")?
                    .parse()
                    .map_err(|e| format!("--mutation-events: {e}"))?;
            }
            "--insert-fraction" => {
                opts.insert_fraction = value("--insert-fraction")?
                    .parse()
                    .map_err(|e| format!("--insert-fraction: {e}"))?;
                if !(0.0..=1.0).contains(&opts.insert_fraction) {
                    return Err("--insert-fraction must be in [0, 1]".into());
                }
            }
            "--k" => {
                opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                if opts.k == 0 {
                    return Err("--k must be at least 1".into());
                }
            }
            "--batch" => {
                opts.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
                if opts.batch == 0 {
                    return Err("--batch must be at least 1".into());
                }
            }
            "--mutation-batch" => {
                opts.mutation_batch = value("--mutation-batch")?
                    .parse()
                    .map_err(|e| format!("--mutation-batch: {e}"))?;
                if opts.mutation_batch == 0 {
                    return Err("--mutation-batch must be at least 1".into());
                }
            }
            "--queue" => {
                opts.queue = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?;
                if opts.queue == 0 {
                    return Err("--queue must be at least 1".into());
                }
            }
            "--ledger" => opts.ledger = Some(value("--ledger")?.clone()),
            "--rate" => {
                let rate: f64 = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?;
                if !(rate > 0.0 && rate.is_finite()) {
                    return Err("--rate must be positive and finite".into());
                }
                opts.rate = Some(rate);
            }
            "--threads" => {
                opts.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => opts.json = Some(value("--json")?.clone()),
            "--heartbeat" => opts.heartbeat = Some(parse_heartbeat(value("--heartbeat")?)?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?.clone()),
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            other => return Err(format!("unknown daemon option {other:?}")),
        }
    }
    resolve_backend(
        &mut opts.backend,
        backend_explicit,
        opts.snapshot.as_deref(),
        opts.input.as_deref(),
    )?;
    Ok(opts)
}

/// Options for the `attack` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackOptions {
    /// SNAP edge-list path (None = preset).
    pub input: Option<String>,
    /// Whether the input file is directed.
    pub directed: bool,
    /// Preset name when no input file (`karate` allowed here).
    pub preset: String,
    /// Dataset scale for generated presets.
    pub scale: f64,
    /// Graph backing: csr|compressed.
    pub backend: String,
    /// PSRZ snapshot to attack (implies the compressed backend).
    pub snapshot: Option<String>,
    /// Utility function name.
    pub utility: String,
    /// Weighted-paths damping.
    pub gamma: f64,
    /// Top-k engine name for exponential observations: peel|gumbel.
    pub engine: String,
    /// Mechanism under attack.
    pub mechanism: String,
    /// Per-observation ε for exponential/laplace.
    pub epsilon: f64,
    /// Smoothing mixing weight `x`.
    pub smoothing_x: f64,
    /// Adjacency notion: edge|node.
    pub adjacency: String,
    /// Which adversaries to run.
    pub adversary: String,
    /// The secret edge, if given explicitly (edge adjacency).
    pub edge: Option<(u32, u32)>,
    /// The rewired node, if given explicitly (node adjacency).
    pub node: Option<u32>,
    /// Maximum observers watched.
    pub observer_cap: usize,
    /// Request batches per trial.
    pub rounds: usize,
    /// Slots per request.
    pub k: usize,
    /// Monte-Carlo trials per world.
    pub trials: usize,
    /// Epoch style: static|insert|delete.
    pub epoch: String,
    /// Rounds before the mid-stream mutation.
    pub prefix_rounds: usize,
    /// Harness worker threads.
    pub threads: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Optional JSON report path (stdout when absent).
    pub json: Option<String>,
}

impl Default for AttackOptions {
    fn default() -> Self {
        AttackOptions {
            input: None,
            directed: false,
            preset: "karate".to_owned(),
            scale: 1.0,
            backend: "csr".to_owned(),
            snapshot: None,
            utility: "common-neighbors".to_owned(),
            gamma: 0.005,
            engine: "gumbel".to_owned(),
            mechanism: "exponential".to_owned(),
            epsilon: 0.5,
            smoothing_x: 0.05,
            adjacency: "edge".to_owned(),
            adversary: "all".to_owned(),
            edge: None,
            node: None,
            observer_cap: 4,
            rounds: 4,
            k: 1,
            trials: 48,
            epoch: "static".to_owned(),
            prefix_rounds: 1,
            threads: None,
            seed: 42,
            json: None,
        }
    }
}

fn parse_attack(rest: &[String]) -> Result<AttackOptions, String> {
    let mut opts = AttackOptions::default();
    let mut backend_explicit = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--input" => opts.input = Some(value("--input")?.clone()),
            "--directed" => opts.directed = true,
            "--preset" => opts.preset = parse_preset(value("--preset")?, &ATTACK_PRESETS)?,
            "--backend" => {
                opts.backend = value("--backend")?.clone();
                backend_explicit = true;
            }
            "--snapshot" => opts.snapshot = Some(value("--snapshot")?.clone()),
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--utility" => opts.utility = parse_utility(value("--utility")?)?,
            "--gamma" => {
                opts.gamma = value("--gamma")?.parse().map_err(|e| format!("--gamma: {e}"))?
            }
            "--engine" => opts.engine = parse_engine(value("--engine")?)?,
            "--mechanism" => {
                opts.mechanism = parse_mechanism(value("--mechanism")?, &ATTACK_MECHANISMS)?
            }
            "--epsilon" => opts.epsilon = parse_epsilon(value("--epsilon")?)?,
            "--smoothing-x" => {
                opts.smoothing_x =
                    value("--smoothing-x")?.parse().map_err(|e| format!("--smoothing-x: {e}"))?;
                if !(0.0..1.0).contains(&opts.smoothing_x) {
                    return Err("--smoothing-x must be in [0, 1)".into());
                }
            }
            "--adjacency" => {
                opts.adjacency = value("--adjacency")?.clone();
                if !["edge", "node"].contains(&opts.adjacency.as_str()) {
                    return Err(format!("unknown adjacency {:?}", opts.adjacency));
                }
            }
            "--adversary" => {
                opts.adversary = value("--adversary")?.clone();
                if !["reconstruction", "mia", "frequency", "all"].contains(&opts.adversary.as_str())
                {
                    return Err(format!("unknown adversary {:?}", opts.adversary));
                }
            }
            "--edge" => {
                let raw = value("--edge")?;
                let (u, v) = raw
                    .split_once(',')
                    .ok_or_else(|| format!("--edge expects \"u,v\", got {raw:?}"))?;
                let u = u.trim().parse().map_err(|e| format!("--edge u: {e}"))?;
                let v = v.trim().parse().map_err(|e| format!("--edge v: {e}"))?;
                opts.edge = Some((u, v));
            }
            "--node" => {
                opts.node = Some(value("--node")?.parse().map_err(|e| format!("--node: {e}"))?);
            }
            "--observer-cap" => {
                opts.observer_cap =
                    value("--observer-cap")?.parse().map_err(|e| format!("--observer-cap: {e}"))?;
                if opts.observer_cap == 0 {
                    return Err("--observer-cap must be at least 1".into());
                }
            }
            "--rounds" => {
                opts.rounds = value("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?;
                if opts.rounds == 0 {
                    return Err("--rounds must be at least 1".into());
                }
            }
            "--k" => {
                opts.k = value("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                if opts.k == 0 {
                    return Err("--k must be at least 1".into());
                }
            }
            "--trials" => {
                opts.trials = value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
                if opts.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
            }
            "--epoch" => {
                opts.epoch = value("--epoch")?.clone();
                if !["static", "insert", "delete", "rewire"].contains(&opts.epoch.as_str()) {
                    return Err(format!("unknown epoch style {:?}", opts.epoch));
                }
            }
            "--prefix-rounds" => {
                opts.prefix_rounds = value("--prefix-rounds")?
                    .parse()
                    .map_err(|e| format!("--prefix-rounds: {e}"))?;
            }
            "--threads" => {
                opts.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => opts.json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown attack option {other:?}")),
        }
    }
    resolve_backend(
        &mut opts.backend,
        backend_explicit,
        opts.snapshot.as_deref(),
        opts.input.as_deref(),
    )?;
    if opts.k != 1 && ["laplace", "smoothing"].contains(&opts.mechanism.as_str()) {
        return Err("--k must be 1 for the single-draw laplace/smoothing mechanisms".into());
    }
    if opts.epoch != "static" && !(1..opts.rounds).contains(&opts.prefix_rounds) {
        return Err("--prefix-rounds must be in 1..--rounds for mid-stream epochs".into());
    }
    match opts.adjacency.as_str() {
        "edge" => {
            if opts.node.is_some() {
                return Err("--node is a node-adjacency option (pass --adjacency node)".into());
            }
            if opts.epoch == "rewire" {
                return Err("--epoch rewire is a node-adjacency style (pass --adjacency node; \
                            edge adjacency uses insert/delete)"
                    .into());
            }
            if opts.epoch == "delete" && opts.edge.is_none() {
                return Err(
                    "--epoch delete needs an explicit --edge that exists in the graph".into()
                );
            }
        }
        "node" => {
            if opts.edge.is_some() {
                return Err("--edge is an edge-adjacency option (node adjacency rewires a \
                            whole neighbourhood; pass --node)"
                    .into());
            }
            if ["insert", "delete"].contains(&opts.epoch.as_str()) {
                return Err("--epoch insert/delete are edge-adjacency styles (node adjacency \
                            uses static|rewire)"
                    .into());
            }
        }
        _ => unreachable!("validated above"),
    }
    Ok(opts)
}

/// Options for the `serve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOptions {
    /// Path to the JSON request list (array of `{"target": N, "k": M}`).
    pub requests: String,
    /// Optional JSON mutation schedule (array of mutation batches)
    /// interleaved with the request chunks.
    pub mutations: Option<String>,
    /// SNAP edge-list path (None = preset).
    pub input: Option<String>,
    /// Whether the input file is directed.
    pub directed: bool,
    /// Preset name when no input file.
    pub preset: String,
    /// Dataset scale for presets.
    pub scale: f64,
    /// Graph backing: csr|compressed.
    pub backend: String,
    /// PSRZ snapshot to serve from (implies the compressed backend).
    pub snapshot: Option<String>,
    /// Utility function name.
    pub utility: String,
    /// Weighted-paths damping.
    pub gamma: f64,
    /// Privacy cost ε of one request.
    pub epsilon: f64,
    /// Total ε each target may spend.
    pub budget: f64,
    /// Top-k engine name: peel|gumbel.
    pub engine: String,
    /// Worker threads (None = all cores).
    pub threads: Option<usize>,
    /// RNG seed.
    pub seed: u64,
    /// Optional JSON report path (stdout when absent).
    pub json: Option<String>,
    /// Telemetry metrics-snapshot path (None = telemetry stays off
    /// unless `--trace` enables it).
    pub metrics_out: Option<String>,
    /// Telemetry trace JSONL path (None = no trace export).
    pub trace: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            requests: String::new(),
            mutations: None,
            input: None,
            directed: false,
            preset: "wiki".to_owned(),
            scale: 1.0,
            backend: "csr".to_owned(),
            snapshot: None,
            utility: "common-neighbors".to_owned(),
            gamma: 0.005,
            epsilon: 1.0,
            budget: 10.0,
            engine: "gumbel".to_owned(),
            threads: None,
            seed: 42,
            json: None,
            metrics_out: None,
            trace: None,
        }
    }
}

fn parse_serve(rest: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions::default();
    let mut backend_explicit = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--requests" => opts.requests = value("--requests")?.clone(),
            "--mutations" => opts.mutations = Some(value("--mutations")?.clone()),
            "--input" => opts.input = Some(value("--input")?.clone()),
            "--directed" => opts.directed = true,
            "--preset" => opts.preset = parse_preset(value("--preset")?, &SERVING_PRESETS)?,
            "--backend" => {
                opts.backend = value("--backend")?.clone();
                backend_explicit = true;
            }
            "--snapshot" => opts.snapshot = Some(value("--snapshot")?.clone()),
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--utility" => opts.utility = parse_utility(value("--utility")?)?,
            "--gamma" => {
                opts.gamma = value("--gamma")?.parse().map_err(|e| format!("--gamma: {e}"))?
            }
            "--epsilon" => opts.epsilon = parse_epsilon(value("--epsilon")?)?,
            "--budget" => {
                opts.budget = value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?;
                if !(opts.budget > 0.0 && opts.budget.is_finite()) {
                    return Err("--budget must be positive and finite".into());
                }
            }
            "--engine" => opts.engine = parse_engine(value("--engine")?)?,
            "--threads" => {
                opts.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--json" => opts.json = Some(value("--json")?.clone()),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?.clone()),
            "--trace" => opts.trace = Some(value("--trace")?.clone()),
            other => return Err(format!("unknown serve option {other:?}")),
        }
    }
    resolve_backend(
        &mut opts.backend,
        backend_explicit,
        opts.snapshot.as_deref(),
        opts.input.as_deref(),
    )?;
    if opts.requests.is_empty() {
        return Err("serve: --requests <path> is required".into());
    }
    Ok(opts)
}

/// Options for the `recommend` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendOptions {
    /// Targets to serve.
    pub targets: Vec<u32>,
    /// SNAP edge-list path (None = preset).
    pub input: Option<String>,
    /// Whether the input file is directed.
    pub directed: bool,
    /// Preset name when no input file.
    pub preset: String,
    /// Dataset scale for presets.
    pub scale: f64,
    /// Utility function name.
    pub utility: String,
    /// Weighted-paths damping.
    pub gamma: f64,
    /// Mechanism name.
    pub mechanism: String,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RecommendOptions {
    fn default() -> Self {
        RecommendOptions {
            targets: Vec::new(),
            input: None,
            directed: false,
            preset: "wiki".to_owned(),
            scale: 1.0,
            utility: "common-neighbors".to_owned(),
            gamma: 0.005,
            mechanism: "exponential".to_owned(),
            epsilon: 1.0,
            seed: 42,
        }
    }
}

fn parse_recommend(rest: &[String]) -> Result<RecommendOptions, String> {
    let mut opts = RecommendOptions::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--target" => {
                opts.targets.push(value("--target")?.parse().map_err(|e| format!("--target: {e}"))?)
            }
            "--input" => opts.input = Some(value("--input")?.clone()),
            "--directed" => opts.directed = true,
            "--preset" => opts.preset = parse_preset(value("--preset")?, &["wiki", "twitter"])?,
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--utility" => opts.utility = parse_utility(value("--utility")?)?,
            "--gamma" => {
                opts.gamma = value("--gamma")?.parse().map_err(|e| format!("--gamma: {e}"))?
            }
            "--mechanism" => {
                opts.mechanism =
                    parse_mechanism(value("--mechanism")?, &["exponential", "laplace"])?
            }
            "--epsilon" => opts.epsilon = parse_epsilon(value("--epsilon")?)?,
            "--seed" => opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown recommend option {other:?}")),
        }
    }
    if opts.targets.is_empty() {
        return Err("recommend: at least one --target is required".into());
    }
    Ok(opts)
}

/// Options shared by data-bearing subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Dataset scale in (0, 1].
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Evaluate the Laplace mechanism.
    pub laplace: bool,
    /// Laplace trials.
    pub trials: u32,
    /// Worker threads.
    pub threads: Option<usize>,
    /// Optional JSON output path.
    pub json: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options { scale: 1.0, seed: 42, laplace: false, trials: 1000, threads: None, json: None }
    }
}

/// Parses argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "figure" => {
            let id = it.next().ok_or("figure: missing id")?.clone();
            const KNOWN: [&str; 8] =
                ["1a", "1b", "2a", "2b", "2c", "lap-vs-exp", "lemma3", "smoothing"];
            if !KNOWN.contains(&id.as_str()) {
                return Err(format!("unknown figure {id:?} (expected one of {KNOWN:?})"));
            }
            Ok(Command::Figure { id, opts: parse_options(it.as_slice())? })
        }
        "claims" => Ok(Command::Claims { opts: parse_options(it.as_slice())? }),
        "bounds" => {
            let topic = it.next().ok_or("bounds: missing topic")?.clone();
            if !["example", "theorems", "planner"].contains(&topic.as_str()) {
                return Err(format!("unknown bounds topic {topic:?}"));
            }
            if it.next().is_some() {
                return Err("bounds takes no options".into());
            }
            Ok(Command::Bounds { topic })
        }
        "recommend" => Ok(Command::Recommend { opts: parse_recommend(it.as_slice())? }),
        "serve" => Ok(Command::Serve { opts: parse_serve(it.as_slice())? }),
        "attack" => Ok(Command::Attack { opts: parse_attack(it.as_slice())? }),
        "daemon" => Ok(Command::Daemon { opts: parse_daemon(it.as_slice())? }),
        "frontier" => Ok(Command::Frontier { opts: parse_frontier(it.as_slice())? }),
        "build-snapshot" => {
            Ok(Command::BuildSnapshot { opts: parse_build_snapshot(it.as_slice())? })
        }
        "dataset" => {
            let name = it.next().ok_or("dataset: missing name")?.clone();
            if !["wiki", "twitter"].contains(&name.as_str()) {
                return Err(format!("unknown dataset {name:?} (expected wiki|twitter)"));
            }
            Ok(Command::Dataset { name, opts: parse_options(it.as_slice())? })
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_options(rest: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => opts.scale = parse_scale(value("--scale")?)?,
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--trials" => {
                opts.trials = value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
            }
            "--threads" => {
                opts.threads =
                    Some(value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?);
            }
            "--json" => opts.json = Some(value("--json")?.clone()),
            "--laplace" => opts.laplace = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_figure_with_options() {
        let cmd = parse(&argv("figure 1a --scale 0.5 --seed 7 --laplace --json out.json")).unwrap();
        match cmd {
            Command::Figure { id, opts } => {
                assert_eq!(id, "1a");
                assert_eq!(opts.scale, 0.5);
                assert_eq!(opts.seed, 7);
                assert!(opts.laplace);
                assert_eq!(opts.json.as_deref(), Some("out.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_figure_and_flag() {
        assert!(parse(&argv("figure 9z")).is_err());
        assert!(parse(&argv("figure 1a --bogus")).is_err());
        assert!(parse(&argv("figure 1a --scale nope")).is_err());
        assert!(parse(&argv("figure 1a --scale 2.0")).is_err());
    }

    #[test]
    fn parses_other_subcommands() {
        assert!(matches!(parse(&argv("claims")).unwrap(), Command::Claims { .. }));
        assert!(matches!(parse(&argv("bounds example")).unwrap(), Command::Bounds { .. }));
        assert!(matches!(
            parse(&argv("dataset wiki --scale 0.1")).unwrap(),
            Command::Dataset { .. }
        ));
        assert!(parse(&argv("bounds nope")).is_err());
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("nonsense")).is_err());
    }

    #[test]
    fn parses_recommend() {
        let cmd = parse(&argv(
            "recommend --target 3 --target 9 --mechanism laplace --epsilon 0.5 --preset twitter",
        ))
        .unwrap();
        match cmd {
            Command::Recommend { opts } => {
                assert_eq!(opts.targets, vec![3, 9]);
                assert_eq!(opts.mechanism, "laplace");
                assert_eq!(opts.epsilon, 0.5);
                assert_eq!(opts.preset, "twitter");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recommend_requires_targets_and_validates() {
        assert!(parse(&argv("recommend")).is_err());
        assert!(parse(&argv("recommend --target 1 --mechanism bogus")).is_err());
        assert!(parse(&argv("recommend --target 1 --epsilon -1")).is_err());
        assert!(parse(&argv("recommend --target 1 --utility nope")).is_err());
    }

    #[test]
    fn parses_serve() {
        let cmd = parse(&argv(
            "serve --requests reqs.json --preset twitter --epsilon 0.5 --budget 2.5 \
             --engine peel --threads 4 --seed 9 --json out.json",
        ))
        .unwrap();
        match cmd {
            Command::Serve { opts } => {
                assert_eq!(opts.requests, "reqs.json");
                assert_eq!(opts.preset, "twitter");
                assert_eq!(opts.epsilon, 0.5);
                assert_eq!(opts.budget, 2.5);
                assert_eq!(opts.engine, "peel");
                assert_eq!(opts.threads, Some(4));
                assert_eq!(opts.seed, 9);
                assert_eq!(opts.json.as_deref(), Some("out.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_requires_requests_and_validates() {
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve --requests r.json --epsilon 0")).is_err());
        assert!(parse(&argv("serve --requests r.json --budget -1")).is_err());
        assert!(parse(&argv("serve --requests r.json --budget inf")).is_err());
        assert!(parse(&argv("serve --requests r.json --utility nope")).is_err());
        assert!(parse(&argv("serve --requests r.json --mechanism laplace")).is_err());
        assert!(parse(&argv("serve --requests r.json --engine bogus")).is_err());
        assert!(parse(&argv("serve --requests r.json --engine")).is_err());
    }

    #[test]
    fn serve_defaults() {
        let cmd = parse(&argv("serve --requests r.json")).unwrap();
        match cmd {
            Command::Serve { opts } => {
                assert_eq!(opts.epsilon, 1.0);
                assert_eq!(opts.budget, 10.0);
                assert_eq!(opts.engine, "gumbel");
                assert_eq!(opts.preset, "wiki");
                assert_eq!(opts.threads, None);
                assert_eq!(opts.json, None);
                assert_eq!(opts.mutations, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_accepts_a_mutation_schedule() {
        let cmd = parse(&argv("serve --requests r.json --mutations muts.json")).unwrap();
        match cmd {
            Command::Serve { opts } => {
                assert_eq!(opts.mutations.as_deref(), Some("muts.json"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --requests r.json --mutations")).is_err());
    }

    #[test]
    fn parses_daemon() {
        let cmd = parse(&argv(
            "daemon --preset twitter --request-events 64 --mutation-events 8 \
             --insert-fraction 0.5 --k 3 --batch 4 --mutation-batch 2 --queue 5 \
             --ledger spend.ledger --rate 100 --engine peel --threads 2 --seed 9 \
             --json out.json",
        ))
        .unwrap();
        match cmd {
            Command::Daemon { opts } => {
                assert_eq!(opts.preset, "twitter");
                assert_eq!(opts.request_events, 64);
                assert_eq!(opts.mutation_events, 8);
                assert_eq!(opts.insert_fraction, 0.5);
                assert_eq!(opts.k, 3);
                assert_eq!(opts.batch, 4);
                assert_eq!(opts.mutation_batch, 2);
                assert_eq!(opts.queue, 5);
                assert_eq!(opts.ledger.as_deref(), Some("spend.ledger"));
                assert_eq!(opts.rate, Some(100.0));
                assert_eq!(opts.engine, "peel");
                assert_eq!(opts.threads, Some(2));
                assert_eq!(opts.seed, 9);
                assert_eq!(opts.json.as_deref(), Some("out.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn daemon_defaults() {
        let cmd = parse(&argv("daemon")).unwrap();
        match cmd {
            Command::Daemon { opts } => {
                assert_eq!(opts, DaemonOptions::default());
                assert_eq!(opts.request_events, 256);
                assert_eq!(opts.mutation_events, 32);
                assert_eq!(opts.batch, 16);
                assert_eq!(opts.queue, 8);
                assert_eq!(opts.ledger, None);
                assert_eq!(opts.rate, None);
                assert_eq!(opts.engine, "gumbel");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn daemon_validates_options() {
        assert!(parse(&argv("daemon --request-events 0")).is_err());
        assert!(parse(&argv("daemon --insert-fraction 1.5")).is_err());
        assert!(parse(&argv("daemon --k 0")).is_err());
        assert!(parse(&argv("daemon --batch 0")).is_err());
        assert!(parse(&argv("daemon --mutation-batch 0")).is_err());
        assert!(parse(&argv("daemon --queue 0")).is_err());
        assert!(parse(&argv("daemon --rate 0")).is_err());
        assert!(parse(&argv("daemon --rate inf")).is_err());
        assert!(parse(&argv("daemon --engine bogus")).is_err());
        assert!(parse(&argv("daemon --budget -1")).is_err());
        assert!(parse(&argv("daemon --ledger")).is_err());
        assert!(parse(&argv("daemon --bogus")).is_err());
    }

    #[test]
    fn attack_accepts_an_engine() {
        let cmd = parse(&argv("attack --engine peel")).unwrap();
        match cmd {
            Command::Attack { opts } => assert_eq!(opts.engine, "peel"),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("attack --engine bogus")).is_err());
    }

    #[test]
    fn parses_attack_with_options() {
        let cmd = parse(&argv(
            "attack --preset wiki --scale 0.1 --mechanism non-private --adversary mia \
             --edge 3,9 --rounds 6 --trials 32 --epoch insert --prefix-rounds 2 \
             --observer-cap 3 --seed 7 --json out.json",
        ))
        .unwrap();
        match cmd {
            Command::Attack { opts } => {
                assert_eq!(opts.preset, "wiki");
                assert_eq!(opts.scale, 0.1);
                assert_eq!(opts.mechanism, "non-private");
                assert_eq!(opts.adversary, "mia");
                assert_eq!(opts.edge, Some((3, 9)));
                assert_eq!(opts.rounds, 6);
                assert_eq!(opts.trials, 32);
                assert_eq!(opts.epoch, "insert");
                assert_eq!(opts.prefix_rounds, 2);
                assert_eq!(opts.observer_cap, 3);
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.json.as_deref(), Some("out.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attack_defaults_are_the_karate_demo() {
        let cmd = parse(&argv("attack")).unwrap();
        match cmd {
            Command::Attack { opts } => {
                assert_eq!(opts, AttackOptions::default());
                assert_eq!(opts.preset, "karate");
                assert_eq!(opts.mechanism, "exponential");
                assert_eq!(opts.epsilon, 0.5);
                assert_eq!(opts.adversary, "all");
                assert_eq!(opts.edge, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attack_rejects_inconsistent_options() {
        assert!(parse(&argv("attack --mechanism bogus")).is_err());
        assert!(parse(&argv("attack --adversary bogus")).is_err());
        assert!(parse(&argv("attack --edge 3")).is_err());
        assert!(parse(&argv("attack --edge 3,x")).is_err());
        assert!(parse(&argv("attack --epsilon 0")).is_err());
        assert!(parse(&argv("attack --smoothing-x 1.0")).is_err());
        assert!(parse(&argv("attack --mechanism laplace --k 2")).is_err());
        assert!(parse(&argv("attack --epoch insert --rounds 2 --prefix-rounds 2")).is_err());
        assert!(parse(&argv("attack --epoch insert --prefix-rounds 0")).is_err());
        assert!(parse(&argv("attack --epoch delete")).is_err(), "delete needs --edge");
        assert!(parse(&argv("attack --preset bogus")).is_err());
        assert!(parse(&argv("attack --trials 0")).is_err());
    }

    #[test]
    fn parses_node_adjacency_attack() {
        let cmd = parse(&argv(
            "attack --adjacency node --node 5 --epoch rewire --rounds 4 --prefix-rounds 2",
        ))
        .unwrap();
        match cmd {
            Command::Attack { opts } => {
                assert_eq!(opts.adjacency, "node");
                assert_eq!(opts.node, Some(5));
                assert_eq!(opts.epoch, "rewire");
                assert_eq!(opts.prefix_rounds, 2);
            }
            other => panic!("{other:?}"),
        }
        // Default adjacency stays edge, with node search available.
        let cmd = parse(&argv("attack --adjacency node")).unwrap();
        match cmd {
            Command::Attack { opts } => assert_eq!(opts.node, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn attack_rejects_mixed_adjacency_options() {
        assert!(parse(&argv("attack --adjacency bogus")).is_err());
        assert!(parse(&argv("attack --node 5")).is_err(), "--node needs --adjacency node");
        assert!(parse(&argv("attack --epoch rewire")).is_err(), "rewire is node-only");
        assert!(parse(&argv("attack --adjacency node --edge 3,9")).is_err());
        assert!(parse(&argv("attack --adjacency node --epoch insert")).is_err());
        assert!(parse(&argv("attack --adjacency node --epoch delete --node 3")).is_err());
        assert!(parse(&argv(
            "attack --adjacency node --epoch rewire --rounds 2 --prefix-rounds 2"
        ))
        .is_err());
    }

    #[test]
    fn parses_build_snapshot() {
        let cmd = parse(&argv(
            "build-snapshot --out lj.psrz --preset livejournal --scale 0.01 --seed 7 \
             --shards 16 --arc-budget 1000000 --json stats.json",
        ))
        .unwrap();
        match cmd {
            Command::BuildSnapshot { opts } => {
                assert_eq!(opts.out, "lj.psrz");
                assert_eq!(opts.preset, "livejournal");
                assert_eq!(opts.scale, 0.01);
                assert_eq!(opts.seed, 7);
                assert_eq!(opts.shards, 16);
                assert_eq!(opts.arc_budget, 1_000_000);
                assert_eq!(opts.json.as_deref(), Some("stats.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn build_snapshot_defaults_and_validation() {
        let cmd = parse(&argv("build-snapshot --out g.psrz")).unwrap();
        match cmd {
            Command::BuildSnapshot { opts } => {
                assert_eq!(opts.preset, "livejournal");
                assert_eq!(opts.shards, 8);
                assert_eq!(opts.arc_budget, 4 * 1024 * 1024);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("build-snapshot")).is_err(), "--out is required");
        assert!(parse(&argv("build-snapshot --out g --preset bogus")).is_err());
        assert!(parse(&argv("build-snapshot --out g --shards 0")).is_err());
        assert!(parse(&argv("build-snapshot --out g --arc-budget 0")).is_err());
        assert!(parse(&argv("build-snapshot --out g --scale 2")).is_err());
    }

    #[test]
    fn serve_accepts_backend_and_snapshot() {
        let cmd = parse(&argv("serve --requests r.json --backend compressed")).unwrap();
        match cmd {
            Command::Serve { opts } => assert_eq!(opts.backend, "compressed"),
            other => panic!("{other:?}"),
        }
        // --snapshot implies the compressed backend and excludes --input.
        let cmd = parse(&argv("serve --requests r.json --snapshot g.psrz")).unwrap();
        match cmd {
            Command::Serve { opts } => {
                assert_eq!(opts.backend, "compressed");
                assert_eq!(opts.snapshot.as_deref(), Some("g.psrz"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --requests r.json --backend bogus")).is_err());
        assert!(parse(&argv("serve --requests r.json --snapshot g --backend csr")).is_err());
        assert!(parse(&argv("serve --requests r.json --snapshot g --input e.txt")).is_err());
        // The snapshot implication is argument-order independent.
        assert!(parse(&argv("serve --requests r.json --backend csr --snapshot g")).is_err());
    }

    #[test]
    fn daemon_and_attack_accept_backends() {
        match parse(&argv("daemon --backend compressed --preset livejournal --scale 0.01")).unwrap()
        {
            Command::Daemon { opts } => {
                assert_eq!(opts.backend, "compressed");
                assert_eq!(opts.preset, "livejournal");
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("attack --snapshot g.psrz")).unwrap() {
            Command::Attack { opts } => {
                assert_eq!(opts.backend, "compressed");
                assert_eq!(opts.snapshot.as_deref(), Some("g.psrz"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("daemon --backend bogus")).is_err());
        assert!(parse(&argv("attack --backend csr --snapshot g")).is_err());
        // Defaults stay csr with no snapshot.
        match parse(&argv("daemon")).unwrap() {
            Command::Daemon { opts } => {
                assert_eq!(opts.backend, "csr");
                assert_eq!(opts.snapshot, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_frontier() {
        let cmd = parse(&argv(
            "frontier --plan plan.json --out f.json --journal f.journal \
             --max-cells 2 --threads 3",
        ))
        .unwrap();
        match cmd {
            Command::Frontier { opts } => {
                assert_eq!(opts.plan.as_deref(), Some("plan.json"));
                assert_eq!(opts.out, "f.json");
                assert_eq!(opts.journal.as_deref(), Some("f.journal"));
                assert_eq!(opts.max_cells, Some(2));
                assert_eq!(opts.threads, Some(3));
                assert!(!opts.no_journal);
                assert_eq!(opts.write_plan, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frontier_defaults_and_validation() {
        let cmd = parse(&argv("frontier")).unwrap();
        match cmd {
            Command::Frontier { opts } => {
                assert_eq!(opts, FrontierOptions::default());
                assert_eq!(opts.out, "frontier.json");
                assert_eq!(opts.plan, None);
                assert_eq!(opts.journal, None);
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("frontier --write-plan plan.json")).unwrap() {
            Command::Frontier { opts } => {
                assert_eq!(opts.write_plan.as_deref(), Some("plan.json"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("frontier --max-cells 0")).is_err());
        assert!(parse(&argv("frontier --no-journal --journal j")).is_err());
        assert!(parse(&argv("frontier --no-journal --max-cells 1")).is_err());
        assert!(parse(&argv("frontier --plan")).is_err());
        assert!(parse(&argv("frontier --bogus")).is_err());
    }

    #[test]
    fn telemetry_flags_parse_on_serve_daemon_and_frontier() {
        match parse(&argv("serve --requests r.json --metrics-out m.json --trace t.jsonl")).unwrap()
        {
            Command::Serve { opts } => {
                assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("daemon --metrics-out m.json --trace t.jsonl --heartbeat 5")).unwrap() {
            Command::Daemon { opts } => {
                assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
                assert_eq!(opts.heartbeat, Some(5));
            }
            other => panic!("{other:?}"),
        }
        match parse(&argv("frontier --metrics-out m.json --trace t.jsonl --heartbeat 2")).unwrap() {
            Command::Frontier { opts } => {
                assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
                assert_eq!(opts.trace.as_deref(), Some("t.jsonl"));
                assert_eq!(opts.heartbeat, Some(2));
            }
            other => panic!("{other:?}"),
        }
        // Telemetry stays off by default, and heartbeats must be positive.
        match parse(&argv("daemon")).unwrap() {
            Command::Daemon { opts } => {
                assert_eq!(opts.metrics_out, None);
                assert_eq!(opts.trace, None);
                assert_eq!(opts.heartbeat, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("daemon --heartbeat 0")).is_err());
        assert!(parse(&argv("frontier --heartbeat x")).is_err());
        assert!(parse(&argv("daemon --metrics-out")).is_err());
        assert!(parse(&argv("serve --requests r.json --trace")).is_err());
    }

    #[test]
    fn shared_axis_parsers_reject_consistently() {
        // The same allow-lists guard every subcommand that takes the axis.
        for cmd in ["recommend --target 1", "serve --requests r.json", "daemon", "attack"] {
            assert!(parse(&argv(&format!("{cmd} --utility nope"))).is_err(), "{cmd}");
            assert!(parse(&argv(&format!("{cmd} --epsilon 0"))).is_err(), "{cmd}");
            assert!(parse(&argv(&format!("{cmd} --epsilon inf"))).is_err(), "{cmd}");
            assert!(parse(&argv(&format!("{cmd} --scale 2"))).is_err(), "{cmd}");
        }
        for cmd in ["serve --requests r.json", "daemon", "attack"] {
            assert!(parse(&argv(&format!("{cmd} --engine bogus"))).is_err(), "{cmd}");
        }
    }

    #[test]
    fn defaults_are_paper_scale() {
        let cmd = parse(&argv("figure 2a")).unwrap();
        match cmd {
            Command::Figure { opts, .. } => {
                assert_eq!(opts.scale, 1.0);
                assert_eq!(opts.seed, 42);
                assert!(!opts.laplace);
                assert_eq!(opts.trials, 1000);
            }
            other => panic!("{other:?}"),
        }
    }
}
