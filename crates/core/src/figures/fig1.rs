//! Figures 1(a) and 1(b): accuracy CDFs under the common-neighbours
//! utility.

use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_utility::CommonNeighbors;

use super::{cdf_figure, FigureConfig, FigureResult};

/// Figure 1(a): Wikipedia-vote-like graph, common neighbours,
/// ε ∈ {0.5, 1}, 10% of nodes as targets. Series: Exponential mechanism
/// accuracy CDF and the Corollary-1 bound CDF per ε.
pub fn fig1a(cfg: &FigureConfig) -> FigureResult {
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(cfg.scale, cfg.seed))
        .expect("preset generation cannot fail at valid scales");
    let (figure, _) = cdf_figure(
        "fig1a",
        &format!("Accuracy CDF, # common neighbors utility, {}", meta.summary()),
        &graph,
        &CommonNeighbors,
        &[0.5, 1.0],
        0.10,
        cfg,
    );
    figure
}

/// Figure 1(b): Twitter-like graph, common neighbours, ε ∈ {1, 3}, 1% of
/// nodes as targets.
pub fn fig1b(cfg: &FigureConfig) -> FigureResult {
    let (graph, meta) = twitter_like(PresetConfig::scaled(cfg.scale, cfg.seed))
        .expect("preset generation cannot fail at valid scales");
    let (figure, _) = cdf_figure(
        "fig1b",
        &format!("Accuracy CDF, # common neighbors utility, {}", meta.summary()),
        &graph,
        &CommonNeighbors,
        &[1.0, 3.0],
        0.01,
        cfg,
    );
    figure
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_smoke_structure() {
        let fig = fig1a(&FigureConfig::smoke(0.05, 7));
        assert_eq!(fig.id, "fig1a");
        assert_eq!(fig.series.len(), 4); // (Exponential + Bound) × 2 ε
        for s in &fig.series {
            assert_eq!(s.points.len(), 11);
            // CDFs end at 100%.
            assert_eq!(s.points[10].1, 1.0);
            // Monotone.
            assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1));
        }
    }

    #[test]
    fn fig1a_lenient_eps_dominates_strict() {
        // At every accuracy level, the ε=1 CDF must sit at or below the
        // ε=0.5 CDF (fewer nodes stuck at low accuracy).
        let fig = fig1a(&FigureConfig::smoke(0.05, 7));
        let strict = &fig.series[0]; // Exponential ε=0.5
        let lenient = &fig.series[2]; // Exponential ε=1
        assert!(strict.label.contains("0.5") && lenient.label.contains("ε=1"));
        // Compare at mid-grid accuracy levels; allow tiny sampling slack.
        for i in 1..10 {
            assert!(
                lenient.points[i].1 <= strict.points[i].1 + 0.05,
                "at x={}: lenient {} vs strict {}",
                strict.points[i].0,
                lenient.points[i].1,
                strict.points[i].1
            );
        }
    }

    #[test]
    fn fig1b_smoke_structure() {
        let fig = fig1b(&FigureConfig::smoke(0.02, 7));
        assert_eq!(fig.id, "fig1b");
        assert_eq!(fig.series.len(), 4);
        assert!(fig.caption.contains("twitter-like"));
    }
}
