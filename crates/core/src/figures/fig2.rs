//! Figures 2(a)–2(c): weighted-paths CDFs and the degree-vs-accuracy view.

use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_utility::{CommonNeighbors, WeightedPaths};

use super::{cdf_figure, FigureConfig, FigureResult, Series};
use crate::experiment::run_experiment;

/// Figure 2(a): Wiki-like graph, weighted paths with γ ∈ {0.0005, 0.05},
/// ε = 1, 10% targets. Series per γ: Exponential + theoretical bound.
pub fn fig2a(cfg: &FigureConfig) -> FigureResult {
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(cfg.scale, cfg.seed)).expect("preset");
    weighted_paths_figure("fig2a", &meta.summary(), &graph, 0.10, cfg)
}

/// Figure 2(b): Twitter-like graph, weighted paths, same parameters, 1%
/// targets.
pub fn fig2b(cfg: &FigureConfig) -> FigureResult {
    let (graph, meta) = twitter_like(PresetConfig::scaled(cfg.scale, cfg.seed)).expect("preset");
    weighted_paths_figure("fig2b", &meta.summary(), &graph, 0.01, cfg)
}

fn weighted_paths_figure(
    id: &str,
    graph_summary: &str,
    graph: &psr_graph::Graph,
    target_fraction: f64,
    cfg: &FigureConfig,
) -> FigureResult {
    let mut series = Vec::new();
    for gamma in [0.0005, 0.05] {
        let wp = WeightedPaths::paper(gamma);
        let (fig, _) = cdf_figure(id, "", graph, &wp, &[1.0], target_fraction, cfg);
        for mut s in fig.series {
            s.label = s.label.replace("ε=1", &format!("γ={gamma}"));
            series.push(s);
        }
    }
    FigureResult {
        id: id.to_owned(),
        caption: format!("Accuracy CDF, weighted paths utility, ε = 1, {graph_summary}"),
        x_label: "accuracy".to_owned(),
        series,
    }
}

/// Figure 2(c): mean accuracy as a function of target degree
/// (Wiki-like graph, common neighbours, ε = 0.5) for the Exponential
/// mechanism and the theoretical bound. Degrees are binned
/// logarithmically, mirroring the paper's log-scale x-axis.
pub fn fig2c(cfg: &FigureConfig) -> FigureResult {
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(cfg.scale, cfg.seed)).expect("preset");
    let result = run_experiment(&graph, &CommonNeighbors, &cfg.experiment(0.5, 0.10));
    assert!(!result.evaluations.is_empty(), "no usable targets — scale too small?");

    // Log-spaced degree bins: [1,2), [2,4), [4,8), …
    let max_degree = result.evaluations.iter().map(|e| e.degree).max().unwrap_or(1);
    let num_bins = (max_degree as f64).log2().ceil() as usize + 1;
    let mut acc_exp = vec![Vec::new(); num_bins];
    let mut acc_bound = vec![Vec::new(); num_bins];
    for e in &result.evaluations {
        let bin = (e.degree.max(1) as f64).log2().floor() as usize;
        acc_exp[bin].push(e.accuracy_exponential);
        acc_bound[bin].push(e.accuracy_bound);
    }
    let to_series = |label: &str, data: &[Vec<f64>]| Series {
        label: label.to_owned(),
        points: data
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(bin, v)| {
                let centre = 2f64.powi(bin as i32) * 1.5; // geometric bin centre
                (centre, v.iter().sum::<f64>() / v.len() as f64)
            })
            .collect(),
    };
    FigureResult {
        id: "fig2c".to_owned(),
        caption: format!(
            "Mean accuracy vs target degree, # common neighbors, ε = 0.5, {}",
            meta.summary()
        ),
        x_label: "degree".to_owned(),
        series: vec![
            to_series("Exponential mechanism", &acc_exp),
            to_series("Theoretical Bound", &acc_bound),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_has_four_series() {
        let fig = fig2a(&FigureConfig::smoke(0.05, 7));
        assert_eq!(fig.series.len(), 4);
        assert!(fig.series[0].label.contains("γ=0.0005"));
        assert!(fig.series[2].label.contains("γ=0.05"));
    }

    #[test]
    fn fig2c_degree_trend() {
        let fig = fig2c(&FigureConfig::smoke(0.08, 7));
        assert_eq!(fig.series.len(), 2);
        let exp = &fig.series[0];
        assert!(exp.points.len() >= 3, "expected several degree bins");
        // x-coordinates strictly increasing (bin centres).
        assert!(exp.points.windows(2).all(|w| w[1].0 > w[0].0));
        // The paper's point: the lowest-degree bin is (much) worse than the
        // best bin.
        let first = exp.points.first().unwrap().1;
        let best = exp.points.iter().map(|p| p.1).fold(0.0, f64::max);
        assert!(best >= first, "low-degree nodes should not dominate");
    }
}
