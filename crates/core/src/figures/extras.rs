//! The in-text experiments: Laplace-vs-Exponential (§7.2 takeaway (ii)),
//! Lemma 3's closed forms (App. E) and the smoothing trade-off (App. F).

use serde::{Deserialize, Serialize};

use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_privacy::closed_form::{
    exponential_two_candidate_win_prob, laplace_two_candidate_win_prob,
};
use psr_utility::CommonNeighbors;

use super::{FigureConfig, FigureResult, Series};
use crate::experiment::run_experiment;

/// Result of the Laplace-vs-Exponential comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismComparison {
    /// ε used.
    pub epsilon: f64,
    /// Per-target Exponential accuracies.
    pub exponential: Vec<f64>,
    /// Per-target Laplace accuracies (aligned).
    pub laplace: Vec<f64>,
    /// Mean absolute per-target gap.
    pub mean_abs_gap: f64,
    /// Largest per-target gap.
    pub max_abs_gap: f64,
}

/// §7.2 takeaway (ii): "the Laplace mechanism achieves nearly identical
/// accuracy as the Exponential mechanism". Runs both on the wiki-like
/// graph under common neighbours and reports per-target gaps.
pub fn lap_vs_exp(cfg: &FigureConfig, epsilon: f64) -> MechanismComparison {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(cfg.scale, cfg.seed)).expect("preset");
    let mut exp_cfg = cfg.experiment(epsilon, 0.10);
    exp_cfg.eval_laplace = true;
    let result = run_experiment(&graph, &CommonNeighbors, &exp_cfg);
    let exponential: Vec<f64> = result.exponential_accuracies();
    let laplace: Vec<f64> = result.laplace_accuracies();
    assert_eq!(exponential.len(), laplace.len());
    let gaps: Vec<f64> = exponential.iter().zip(&laplace).map(|(a, b)| (a - b).abs()).collect();
    let mean_abs_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let max_abs_gap = gaps.iter().fold(0.0f64, |m, &g| m.max(g));
    MechanismComparison { epsilon, exponential, laplace, mean_abs_gap, max_abs_gap }
}

/// Appendix E: the exact two-candidate win probabilities of both
/// mechanisms as a function of the utility gap — the curves proving the
/// mechanisms are not isomorphic.
pub fn lemma3_curves(epsilon: f64) -> FigureResult {
    let grid: Vec<f64> = (0..=40).map(|i| i as f64 * 0.1).collect();
    let laplace = Series {
        label: format!("Laplace win prob (Lemma 3), ε={epsilon}"),
        points: grid.iter().map(|&d| (d, laplace_two_candidate_win_prob(epsilon, d))).collect(),
    };
    let exponential = Series {
        label: format!("Exponential win prob, ε={epsilon}"),
        points: grid.iter().map(|&d| (d, exponential_two_candidate_win_prob(epsilon, d))).collect(),
    };
    FigureResult {
        id: "lemma3".to_owned(),
        caption: "Two-candidate win probability vs utility gap (App. E)".to_owned(),
        x_label: "utility gap".to_owned(),
        series: vec![laplace, exponential],
    }
}

/// Appendix F / Theorem 5: the smoothing mechanism's privacy and accuracy
/// as `x` sweeps (0, 1) at candidate-set size `n`. Series: ε(x) and the
/// accuracy guarantee `x·μ` with `μ = 1`.
pub fn smoothing_tradeoff(n: usize) -> FigureResult {
    let xs: Vec<f64> = (1..100).map(|i| i as f64 / 100.0).collect();
    let eps = Series {
        label: format!("ε(x) = ln(1 + nx/(1−x)), n={n}"),
        points: xs.iter().map(|&x| (x, psr_bounds::theorem5::smoothing_epsilon(x, n))).collect(),
    };
    let acc = Series {
        label: "accuracy guarantee x·μ (μ=1)".to_owned(),
        points: xs.iter().map(|&x| (x, psr_bounds::theorem5::smoothing_accuracy(x, 1.0))).collect(),
    };
    FigureResult {
        id: "smoothing".to_owned(),
        caption: "Linear smoothing trade-off (App. F, Theorem 5)".to_owned(),
        x_label: "x".to_owned(),
        series: vec![eps, acc],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lap_vs_exp_gap_is_small() {
        let cmp = lap_vs_exp(&FigureConfig::smoke(0.05, 7), 1.0);
        assert!(!cmp.exponential.is_empty());
        // The paper's claim, quantified: mean gap well under 2 points.
        assert!(cmp.mean_abs_gap < 0.02, "mean gap {}", cmp.mean_abs_gap);
        // Max per-target gap bounded by Monte-Carlo noise at 1000 trials.
        assert!(cmp.max_abs_gap < 0.10, "max gap {}", cmp.max_abs_gap);
    }

    #[test]
    fn lemma3_curves_disagree_in_the_middle() {
        let fig = lemma3_curves(1.0);
        let (lap, exp) = (&fig.series[0], &fig.series[1]);
        assert_eq!(lap.points.len(), exp.points.len());
        // Identical at gap 0 (both ½)…
        assert!((lap.points[0].1 - 0.5).abs() < 1e-12);
        assert!((exp.points[0].1 - 0.5).abs() < 1e-12);
        // …but measurably different at moderate gaps.
        let max_gap = lap
            .points
            .iter()
            .zip(&exp.points)
            .map(|(a, b)| (a.1 - b.1).abs())
            .fold(0.0f64, f64::max);
        assert!(max_gap > 0.01, "mechanisms should differ, max gap {max_gap}");
    }

    #[test]
    fn smoothing_tradeoff_shapes() {
        let fig = smoothing_tradeoff(1000);
        let eps = &fig.series[0];
        let acc = &fig.series[1];
        // ε is increasing in x; accuracy is linear.
        assert!(eps.points.windows(2).all(|w| w[1].1 > w[0].1));
        assert!((acc.points[49].1 - 0.5).abs() < 1e-12);
        // Constant ε at n=1000 pins x (and so accuracy) near zero:
        // invert ε(x) ≤ 1 → x ≤ (e−1)/(e−1+n).
        let x_at_eps1 = psr_privacy::LinearSmoothing::x_for_epsilon(1.0, 1000);
        assert!(x_at_eps1 < 0.002);
    }
}
