//! Figure harnesses: one entry point per figure/table in the paper's
//! evaluation, each regenerating the exact series the paper plots.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Fig 1(a) — Wiki, common neighbours, ε ∈ {0.5, 1} | [`fig1a`] |
//! | Fig 1(b) — Twitter, common neighbours, ε ∈ {1, 3} | [`fig1b`] |
//! | Fig 2(a) — Wiki, weighted paths, γ ∈ {0.0005, 0.05}, ε = 1 | [`fig2a`] |
//! | Fig 2(b) — Twitter, weighted paths, same | [`fig2b`] |
//! | Fig 2(c) — accuracy vs target degree, Wiki, ε = 0.5 | [`fig2c`] |
//! | §7.2 Laplace ≈ Exponential | [`lap_vs_exp`] |
//! | App. E / Lemma 3 closed forms | [`lemma3_curves`] |
//! | App. F / Theorem 5 smoothing trade-off | [`smoothing_tradeoff`] |

mod extras;
mod fig1;
mod fig2;

pub use extras::{lap_vs_exp, lemma3_curves, smoothing_tradeoff, MechanismComparison};
pub use fig1::{fig1a, fig1b};
pub use fig2::{fig2a, fig2b, fig2c};

use serde::{Deserialize, Serialize};

use crate::experiment::{run_experiment, ExperimentConfig, ExperimentResult};
use crate::report::cdf_series;
use psr_graph::Graph;
use psr_utility::UtilityFunction;

/// A plottable series: label plus `(x, y)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (mirrors the paper's legends).
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// A regenerated figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure identifier, e.g. `"fig1a"`.
    pub id: String,
    /// Caption describing workload and parameters.
    pub caption: String,
    /// Label of the shared x-axis (`"accuracy"` for the CDF figures,
    /// `"degree"` for Fig 2(c), `"x"`/`"gap"` for the appendix sweeps).
    pub x_label: String,
    /// The series the paper plots.
    pub series: Vec<Series>,
}

/// Shared figure-harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FigureConfig {
    /// Dataset scale relative to the paper (1.0 = full size).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Evaluate the Laplace mechanism alongside the Exponential one.
    pub eval_laplace: bool,
    /// Laplace Monte-Carlo trials.
    pub laplace_trials: u32,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
}

impl Default for FigureConfig {
    fn default() -> Self {
        FigureConfig {
            scale: 1.0,
            seed: 42,
            eval_laplace: false,
            laplace_trials: 1000,
            threads: None,
        }
    }
}

impl FigureConfig {
    /// Reduced-scale config for tests and smoke runs.
    pub fn smoke(scale: f64, seed: u64) -> Self {
        FigureConfig { scale, seed, ..Default::default() }
    }

    pub(crate) fn experiment(&self, epsilon: f64, target_fraction: f64) -> ExperimentConfig {
        ExperimentConfig {
            epsilon,
            target_fraction,
            seed: self.seed,
            laplace_trials: self.laplace_trials,
            eval_laplace: self.eval_laplace,
            threads: self.threads,
            ..Default::default()
        }
    }
}

/// Shared CDF-figure skeleton: for each ε, one mechanism series and one
/// theoretical-bound series (the paper's legend layout).
pub(crate) fn cdf_figure(
    id: &str,
    caption: &str,
    graph: &Graph,
    utility: &dyn UtilityFunction,
    epsilons: &[f64],
    target_fraction: f64,
    cfg: &FigureConfig,
) -> (FigureResult, Vec<ExperimentResult>) {
    let mut series = Vec::new();
    let mut results = Vec::new();
    for &eps in epsilons {
        let result = run_experiment(graph, utility, &cfg.experiment(eps, target_fraction));
        assert!(
            !result.evaluations.is_empty(),
            "no usable targets at eps {eps} — scale too small?"
        );
        series.push(cdf_series(format!("Exponential ε={eps}"), result.exponential_accuracies()));
        if cfg.eval_laplace {
            series.push(cdf_series(format!("Laplace ε={eps}"), result.laplace_accuracies()));
        }
        series.push(cdf_series(format!("Theor. Bound ε={eps}"), result.bound_accuracies()));
        results.push(result);
    }
    (
        FigureResult {
            id: id.to_owned(),
            caption: caption.to_owned(),
            x_label: "accuracy".to_owned(),
            series,
        },
        results,
    )
}
