//! # private-social-recs
//!
//! A full reproduction of **"Personalized Social Recommendations —
//! Accurate or Private?"** (Machanavajjhala, Korolova, Das Sarma;
//! PVLDB 4(7), 2011) as a production-quality Rust library.
//!
//! The paper asks whether recommendations computed *solely from a social
//! graph's links* can be simultaneously accurate and edge-differentially
//! private, and answers mostly negatively: it proves trade-off lower
//! bounds, adapts the Laplace and Exponential mechanisms, and measures
//! both against the bounds on real graphs. This crate ties the workspace
//! together:
//!
//! * [`Recommender`] — serve a single ε-private recommendation for a
//!   target node (the paper's deliverable, as an API),
//! * [`serving`] — the batch deployment of that API: a
//!   [`RecommendationService`] fans `(target, k)` request batches across
//!   a worker pool, enforces per-target ε budgets, and serves a *mutable*
//!   graph through versioned epochs
//!   ([`serving::RecommendationService::apply_mutations`]): edge
//!   mutations land in a `psr_graph::DeltaGraph` overlay, and only dirty
//!   targets lose their cached candidate/utility state,
//! * [`experiment`] — the §7 protocol: sample targets, compute per-target
//!   expected accuracies and theoretical ceilings, in parallel,
//! * [`figures`] — one harness per figure (1(a)–2(c)) plus the in-text
//!   comparisons, regenerating the paper's series,
//! * [`cdf`]/[`report`] — the accuracy-CDF aggregation and text rendering
//!   used for EXPERIMENTS.md.
//!
//! ## Sharing one graph across consumers
//!
//! Both [`Recommender`] and [`serving::RecommendationService`] keep their
//! graph behind an [`std::sync::Arc`], and their constructors accept
//! either an owned [`psr_graph::Graph`] or an existing `Arc<Graph>`. A
//! deployment therefore loads the graph once and hands the same handle to
//! every service, recommender and experiment
//! (`service.shared_graph()` / `recommender.shared_graph()`), instead of
//! cloning a multi-million-edge structure per consumer.
//!
//! ## Privacy-budget semantics
//!
//! Every request served by a [`serving::RecommendationService`] costs its
//! configured ε (the request's `k` slots are peeled at ε/k each, so basic
//! composition charges ε per request), and repeated requests about one
//! target compose additively. The service's
//! [`serving::BudgetAccountant`] admits requests sequentially in batch
//! order, *charges at admission time* (a request that later finds no
//! candidates has still queried the graph — refunds would be unsound),
//! and rejects anything that would push a target past
//! `budget_per_target` with a typed
//! [`serving::ServeError::BudgetExhausted`]. Budgets persist across graph
//! epochs: applying mutations moves the served graph to an edge-adjacent
//! neighbour (Definition 1), not to a fresh database, so spend is never
//! refunded implicitly (see the [`serving`] module docs).
//!
//! ## Quickstart
//!
//! ```
//! use psr_core::{Recommender, RecommenderConfig};
//! use psr_datasets::toy::karate_club;
//! use psr_utility::CommonNeighbors;
//! use psr_privacy::ExponentialMechanism;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let graph = karate_club();
//! let rec = Recommender::new(
//!     graph,
//!     Box::new(CommonNeighbors),
//!     Box::new(ExponentialMechanism::paper()),
//!     RecommenderConfig { epsilon: 1.0, ..Default::default() },
//! );
//! // Seeded for reproducibility; `rand::thread_rng()` works the same way.
//! let mut rng = StdRng::seed_from_u64(42);
//! let suggestion = rec.recommend(0, &mut rng).unwrap();
//! assert!(suggestion != 0);
//! ```

pub mod cdf;
pub mod experiment;
pub mod figures;
mod pipeline;
pub mod report;
pub mod serving;

pub use cdf::AccuracyCdf;
pub use experiment::{
    evaluate_target, run_experiment, ExperimentConfig, ExperimentResult, TargetEvaluation,
};
pub use pipeline::{Recommender, RecommenderConfig};
pub use serving::{
    BatchRequest, BudgetLedger, EpochPin, JournalLedger, RecommendationService, ServeError, Served,
    ServiceConfig,
};
