//! Accuracy CDFs — the y-axis of every figure in §7.
//!
//! The paper plots, for each accuracy level `1−δ` on a 0.1 grid, the
//! fraction of target nodes receiving recommendations of accuracy at most
//! `1−δ`.

use serde::{Deserialize, Serialize};

/// Empirical CDF over per-target accuracies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyCdf {
    /// Sorted accuracy values.
    sorted: Vec<f64>,
}

impl AccuracyCdf {
    /// Builds a CDF from raw per-target accuracies.
    ///
    /// # Panics
    /// Panics when `values` is empty or contains non-finite entries.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "CDF needs at least one observation");
        assert!(values.iter().all(|v| v.is_finite()), "accuracies must be finite");
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        AccuracyCdf { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of targets with accuracy ≤ `x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The paper's plotting grid: `(accuracy, % of nodes ≤ accuracy)` at
    /// 0.0, 0.1, …, 1.0.
    pub fn paper_series(&self) -> Vec<(f64, f64)> {
        (0..=10).map(|i| i as f64 / 10.0).map(|x| (x, self.fraction_at_most(x))).collect()
    }

    /// Quantile (e.g. `0.5` = median accuracy).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Mean accuracy.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> AccuracyCdf {
        AccuracyCdf::new(vec![0.05, 0.15, 0.35, 0.55, 0.95])
    }

    #[test]
    fn fractions_match_hand_count() {
        let c = cdf();
        assert_eq!(c.fraction_at_most(0.0), 0.0);
        assert_eq!(c.fraction_at_most(0.1), 0.2);
        assert_eq!(c.fraction_at_most(0.5), 0.6);
        assert_eq!(c.fraction_at_most(1.0), 1.0);
    }

    #[test]
    fn boundary_values_are_inclusive() {
        let c = AccuracyCdf::new(vec![0.1, 0.1, 0.2]);
        assert!((c.fraction_at_most(0.1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_series_has_eleven_points_and_is_monotone() {
        let series = cdf().paper_series();
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[10].0, 1.0);
        assert!(series.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(series[10].1, 1.0);
    }

    #[test]
    fn quantiles_and_mean() {
        let c = cdf();
        assert_eq!(c.quantile(0.0), 0.05);
        assert_eq!(c.quantile(0.5), 0.35);
        assert_eq!(c.quantile(1.0), 0.95);
        assert!((c.mean() - 0.41).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_rejected() {
        let _ = AccuracyCdf::new(vec![]);
    }
}
