//! The serving-side API: one private recommendation per call.
//!
//! The [`Recommender`] holds its graph behind an [`Arc`], so batch-serving
//! consumers ([`crate::serving::RecommendationService`]) and ad-hoc
//! single-query consumers can share one in-memory graph instead of cloning
//! it per consumer.

use std::sync::Arc;

use psr_graph::{Graph, NodeId};
use psr_privacy::{Mechanism, Recommendation};
use psr_utility::{CandidateSet, SensitivityNorm, UtilityFunction};

/// Configuration of a [`Recommender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecommenderConfig {
    /// Differential-privacy parameter ε.
    pub epsilon: f64,
    /// Which norm reading of footnote 5's `Δf` calibrates the mechanisms
    /// (DESIGN.md §4; default `‖·‖₁`).
    pub sensitivity_norm: SensitivityNorm,
    /// Override for `Δf` when the utility function reports no analytic
    /// bound (e.g. exotic custom utilities).
    pub sensitivity_override: Option<f64>,
}

impl Default for RecommenderConfig {
    fn default() -> Self {
        RecommenderConfig {
            epsilon: 1.0,
            // Δ∞ calibration: sound for monotone utilities (see
            // ExperimentConfig) and the reading that reproduces the paper's
            // curves.
            sensitivity_norm: SensitivityNorm::LInf,
            sensitivity_override: None,
        }
    }
}

/// A differentially private social recommender: the paper's object of
/// study packaged as a serving API. Holds the graph, a link-analysis
/// utility function and a DP mechanism.
pub struct Recommender {
    graph: Arc<Graph>,
    utility: Box<dyn UtilityFunction>,
    mechanism: Box<dyn Mechanism>,
    config: RecommenderConfig,
}

impl Recommender {
    /// Assembles a recommender. Accepts an owned [`Graph`] or an
    /// [`Arc<Graph>`] already shared with other consumers (e.g. a
    /// [`crate::serving::RecommendationService`]).
    ///
    /// # Panics
    /// Panics if ε is not positive, or if the utility function reports no
    /// sensitivity and none is overridden.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        utility: Box<dyn UtilityFunction>,
        mechanism: Box<dyn Mechanism>,
        config: RecommenderConfig,
    ) -> Self {
        assert!(config.epsilon > 0.0, "epsilon must be positive");
        let r = Recommender { graph: graph.into(), utility, mechanism, config };
        let _ = r.sensitivity(); // validate eagerly
        r
    }

    /// The calibrated sensitivity `Δf`.
    pub fn sensitivity(&self) -> f64 {
        self.config
            .sensitivity_override
            .or_else(|| {
                self.utility.sensitivity(&self.graph).map(|s| s.value(self.config.sensitivity_norm))
            })
            .expect("utility reports no sensitivity and no override was given")
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// A shared handle to the underlying graph, for wiring additional
    /// consumers (services, experiments) to the same in-memory instance.
    pub fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// Draws one ε-private recommendation for `target`. Returns `None`
    /// when the target has no candidates at all (fully connected target).
    ///
    /// A draw that lands in the zero-utility class is resolved to a
    /// uniformly random zero-utility candidate, so callers always receive
    /// a concrete node.
    pub fn recommend(&self, target: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId> {
        let candidates = CandidateSet::for_target(&self.graph, target);
        if candidates.is_empty() {
            return None;
        }
        let u = self.utility.utilities(&self.graph, target, &candidates);
        let rec = self.mechanism.recommend(&u, self.config.epsilon, self.sensitivity(), rng);
        match rec {
            Recommendation::Node(v) => Some(v),
            Recommendation::ZeroUtilityClass => {
                psr_privacy::resolve_recommendation(rec, &u, &candidates, rng)
            }
        }
    }

    /// The expected accuracy this recommender achieves for `target`
    /// (`None` for targets dropped by the §7.1 protocol: no candidates or
    /// an all-zero utility vector).
    pub fn expected_accuracy(&self, target: NodeId, rng: &mut dyn rand::RngCore) -> Option<f64> {
        let candidates = CandidateSet::for_target(&self.graph, target);
        if candidates.is_empty() {
            return None;
        }
        let u = self.utility.utilities(&self.graph, target, &candidates);
        if u.is_all_zero() {
            return None;
        }
        Some(self.mechanism.expected_accuracy(&u, self.config.epsilon, self.sensitivity(), rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_datasets::toy::karate_club;
    use psr_privacy::{ExponentialMechanism, LaplaceMechanism};
    use psr_utility::CommonNeighbors;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn recommender(eps: f64) -> Recommender {
        Recommender::new(
            karate_club(),
            Box::new(CommonNeighbors),
            Box::new(ExponentialMechanism::paper()),
            RecommenderConfig { epsilon: eps, ..Default::default() },
        )
    }

    #[test]
    fn recommendations_are_valid_candidates() {
        let rec = recommender(1.0);
        let mut r = rng(1);
        for target in 0..34u32 {
            for _ in 0..5 {
                let v = rec.recommend(target, &mut r).unwrap();
                assert_ne!(v, target);
                assert!(!rec.graph().has_edge(target, v), "recommended an existing neighbour");
            }
        }
    }

    #[test]
    fn high_eps_recommends_top_utility_node() {
        let rec = recommender(500.0);
        let mut r = rng(2);
        let u = CommonNeighbors.utilities_for(rec.graph(), 0);
        let best = u.argmax().unwrap();
        let best_u = u.u_max();
        for _ in 0..10 {
            let got = rec.recommend(0, &mut r).unwrap();
            // Ties possible: any argmax-utility node qualifies.
            assert_eq!(u.get(got), best_u, "expected a max-utility node like {best}");
        }
    }

    #[test]
    fn expected_accuracy_in_unit_interval_and_monotone_in_eps() {
        let mut r = rng(3);
        let lo = recommender(0.2).expected_accuracy(0, &mut r).unwrap();
        let hi = recommender(3.0).expected_accuracy(0, &mut r).unwrap();
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
        assert!(hi > lo);
    }

    #[test]
    fn laplace_variant_works_too() {
        let rec = Recommender::new(
            karate_club(),
            Box::new(CommonNeighbors),
            Box::new(LaplaceMechanism { trials: 300 }),
            RecommenderConfig::default(),
        );
        let mut r = rng(4);
        let v = rec.recommend(5, &mut r).unwrap();
        assert!(v < 34);
        assert!(rec.expected_accuracy(5, &mut r).is_some());
    }

    #[test]
    fn sensitivity_override_respected() {
        let rec = Recommender::new(
            karate_club(),
            Box::new(CommonNeighbors),
            Box::new(ExponentialMechanism::paper()),
            RecommenderConfig { sensitivity_override: Some(7.5), ..Default::default() },
        );
        assert_eq!(rec.sensitivity(), 7.5);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_eps_rejected() {
        let _ = recommender(0.0);
    }

    #[test]
    fn recommenders_share_one_graph_instance() {
        let shared = Arc::new(karate_club());
        let a = Recommender::new(
            Arc::clone(&shared),
            Box::new(CommonNeighbors),
            Box::new(ExponentialMechanism::paper()),
            RecommenderConfig::default(),
        );
        let b = Recommender::new(
            a.shared_graph(),
            Box::new(CommonNeighbors),
            Box::new(ExponentialMechanism::paper()),
            RecommenderConfig::default(),
        );
        assert!(std::ptr::eq(a.graph(), b.graph()), "both must alias the shared graph");
        assert!(std::ptr::eq(shared.as_ref(), b.graph()));
    }
}
