//! The §7.1 experimental protocol.
//!
//! For a graph and utility function: sample target nodes uniformly at
//! random (10% on the Wiki graph, 1% on Twitter), compute each target's
//! utility vector over the standard candidate set, drop targets whose
//! vector is all-zero (footnote 10), and record for each survivor
//!
//! * the Exponential mechanism's exact expected accuracy,
//! * the Laplace mechanism's 1,000-trial Monte-Carlo accuracy,
//! * the Corollary-1 theoretical ceiling with the exact per-target `t`.
//!
//! Targets are evaluated in parallel with per-target RNG streams split
//! from the experiment seed, so results are deterministic regardless of
//! thread count.

use psr_gen::seed::{rng_from_seed, split_seed};
use psr_graph::{Graph, NodeId};
use psr_privacy::{ExponentialMechanism, LaplaceMechanism, Mechanism};
use psr_utility::{CandidateSet, SensitivityNorm, UtilityFunction};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Privacy parameter ε.
    pub epsilon: f64,
    /// Fraction of nodes sampled as targets (§7.1: 0.10 for Wiki, 0.01
    /// for Twitter).
    pub target_fraction: f64,
    /// Master seed; target sampling and every per-target mechanism stream
    /// derive from it.
    pub seed: u64,
    /// Monte-Carlo trials for the Laplace mechanism (paper: 1,000).
    pub laplace_trials: u32,
    /// Evaluate the Laplace mechanism too (it is ~`laplace_trials`× the
    /// cost of the closed-form Exponential evaluation).
    pub eval_laplace: bool,
    /// Sensitivity norm for `Δf` (DESIGN.md §4).
    pub sensitivity_norm: SensitivityNorm,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            epsilon: 1.0,
            target_fraction: 0.1,
            seed: 42,
            laplace_trials: 1000,
            eval_laplace: true,
            // Both paper utilities are *monotone* in edge additions, so the
            // mechanisms are ε-DP at the Δ∞ calibration (McSherry–Talwar's
            // monotone case; audited in psr-privacy's tests). This matches
            // footnote 5's Δf for common neighbours (= 1).
            sensitivity_norm: SensitivityNorm::LInf,
            threads: None,
        }
    }
}

/// Per-target outcome record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetEvaluation {
    /// The target node.
    pub target: NodeId,
    /// Its (out-)degree.
    pub degree: usize,
    /// Maximum utility over candidates.
    pub u_max: f64,
    /// Number of candidates with non-zero utility.
    pub num_nonzero: usize,
    /// Candidate-set size.
    pub num_candidates: usize,
    /// Exact §7.1 edit distance `t`.
    pub t: u64,
    /// Exponential mechanism expected accuracy (closed form).
    pub accuracy_exponential: f64,
    /// Laplace mechanism Monte-Carlo accuracy (`None` if not evaluated).
    pub accuracy_laplace: Option<f64>,
    /// Corollary-1 ceiling (tightest `c`).
    pub accuracy_bound: f64,
}

/// Full experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Configuration used.
    pub config: ExperimentConfig,
    /// Utility function name.
    pub utility: String,
    /// The calibrated `Δf`.
    pub sensitivity: f64,
    /// Targets sampled (before the all-zero drop).
    pub targets_sampled: usize,
    /// Targets dropped for having all-zero utility (footnote 10).
    pub targets_dropped: usize,
    /// Per-target outcomes.
    pub evaluations: Vec<TargetEvaluation>,
}

/// Evaluates one target. Returns `None` when the target must be dropped
/// (no candidates, or all-zero utility vector).
pub fn evaluate_target(
    graph: &Graph,
    utility: &dyn UtilityFunction,
    config: &ExperimentConfig,
    sensitivity: f64,
    target: NodeId,
    rng: &mut dyn rand::RngCore,
) -> Option<TargetEvaluation> {
    let candidates = CandidateSet::for_target(graph, target);
    if candidates.is_empty() {
        return None;
    }
    let u = utility.utilities(graph, target, &candidates);
    if u.is_all_zero() {
        return None;
    }
    let t = utility
        .edit_distance_t(graph, target, &u)
        .unwrap_or_else(|| psr_bounds::edit_distance::t_generic_upper(graph.max_degree() as u64));

    let exp = ExponentialMechanism::paper();
    let accuracy_exponential = exp.expected_accuracy(&u, config.epsilon, sensitivity, rng);
    let accuracy_laplace = config.eval_laplace.then(|| {
        LaplaceMechanism { trials: config.laplace_trials }.expected_accuracy(
            &u,
            config.epsilon,
            sensitivity,
            rng,
        )
    });
    let bound = psr_bounds::best_accuracy_bound(&u, config.epsilon, t, None);

    Some(TargetEvaluation {
        target,
        degree: graph.degree(target),
        u_max: u.u_max(),
        num_nonzero: u.nonzero().len(),
        num_candidates: u.len(),
        t,
        accuracy_exponential,
        accuracy_laplace,
        accuracy_bound: bound.accuracy_bound,
    })
}

/// Samples targets and evaluates them in parallel.
pub fn run_experiment(
    graph: &Graph,
    utility: &dyn UtilityFunction,
    config: &ExperimentConfig,
) -> ExperimentResult {
    assert!(
        config.target_fraction > 0.0 && config.target_fraction <= 1.0,
        "target_fraction must be in (0, 1]"
    );
    let sensitivity = utility
        .sensitivity(graph)
        .map(|s| s.value(config.sensitivity_norm))
        .expect("utility must report sensitivity for experiments");

    // Uniform target sample (§7.1), deterministic in the seed.
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    let mut sample_rng = rng_from_seed(split_seed(config.seed, 0xA11));
    nodes.shuffle(&mut sample_rng);
    let count = ((graph.num_nodes() as f64 * config.target_fraction).round() as usize)
        .clamp(1, graph.num_nodes());
    let targets = &nodes[..count];

    let threads = config
        .threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
        .max(1);
    let chunk_size = targets.len().div_ceil(threads);

    let mut evaluations: Vec<Option<TargetEvaluation>> = vec![None; targets.len()];
    std::thread::scope(|scope| {
        for (chunk, out) in targets.chunks(chunk_size).zip(evaluations.chunks_mut(chunk_size)) {
            let config = *config;
            scope.spawn(move || {
                for (i, &target) in chunk.iter().enumerate() {
                    // Per-target stream: reordering threads cannot change
                    // any target's result.
                    let mut rng = rng_from_seed(split_seed(config.seed, 0xE0_0000 + target as u64));
                    out[i] =
                        evaluate_target(graph, utility, &config, sensitivity, target, &mut rng);
                }
            });
        }
    });

    let targets_sampled = targets.len();
    let evaluations: Vec<TargetEvaluation> = evaluations.into_iter().flatten().collect();
    let targets_dropped = targets_sampled - evaluations.len();
    ExperimentResult {
        config: *config,
        utility: utility.name(),
        sensitivity,
        targets_sampled,
        targets_dropped,
        evaluations,
    }
}

impl ExperimentResult {
    /// Accuracies of the Exponential mechanism across targets.
    pub fn exponential_accuracies(&self) -> Vec<f64> {
        self.evaluations.iter().map(|e| e.accuracy_exponential).collect()
    }

    /// Accuracies of the Laplace mechanism across targets (empty when not
    /// evaluated).
    pub fn laplace_accuracies(&self) -> Vec<f64> {
        self.evaluations.iter().filter_map(|e| e.accuracy_laplace).collect()
    }

    /// Theoretical ceilings across targets.
    pub fn bound_accuracies(&self) -> Vec<f64> {
        self.evaluations.iter().map(|e| e.accuracy_bound).collect()
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialisable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_datasets::toy::karate_club;
    use psr_utility::{CommonNeighbors, WeightedPaths};

    fn config() -> ExperimentConfig {
        ExperimentConfig {
            target_fraction: 1.0,
            laplace_trials: 200,
            threads: Some(2),
            ..Default::default()
        }
    }

    #[test]
    fn karate_experiment_covers_all_targets() {
        let g = karate_club();
        let result = run_experiment(&g, &CommonNeighbors, &config());
        assert_eq!(result.targets_sampled, 34);
        // Karate club: every node has a 2-hop neighbour, none dropped.
        assert_eq!(result.targets_dropped, 0);
        assert_eq!(result.evaluations.len(), 34);
        for e in &result.evaluations {
            assert!((0.0..=1.0).contains(&e.accuracy_exponential));
            assert!((0.0..=1.0 + 1e-9).contains(&e.accuracy_laplace.unwrap()));
            assert!((0.0..=1.0).contains(&e.accuracy_bound));
            assert!(e.u_max >= 1.0);
            assert!(e.t >= 1);
            assert_eq!(e.num_candidates, 34 - 1 - e.degree);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let g = karate_club();
        let mut c1 = config();
        c1.threads = Some(1);
        let mut c4 = config();
        c4.threads = Some(4);
        let a = run_experiment(&g, &CommonNeighbors, &c1);
        let b = run_experiment(&g, &CommonNeighbors, &c4);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn bound_is_respected_by_exponential_on_average() {
        // Corollary 1 upper-bounds *any* ε-DP algorithm; the Exponential
        // mechanism must sit at or below it for every target.
        let g = karate_club();
        let result = run_experiment(&g, &CommonNeighbors, &config());
        for e in &result.evaluations {
            assert!(
                e.accuracy_exponential <= e.accuracy_bound + 0.02,
                "target {}: exp {} above bound {}",
                e.target,
                e.accuracy_exponential,
                e.accuracy_bound
            );
        }
    }

    #[test]
    fn weighted_paths_experiment_runs() {
        let g = karate_club();
        let wp = WeightedPaths::paper(0.005);
        let result = run_experiment(&g, &wp, &config());
        assert!(result.evaluations.len() > 30);
        // Δ∞ for truncated weighted paths: 1 + 2γ·d_max > 1.
        assert!(result.sensitivity > 1.0);
    }

    #[test]
    fn partial_sampling_respects_fraction() {
        let g = karate_club();
        let mut c = config();
        c.target_fraction = 0.25;
        let result = run_experiment(&g, &CommonNeighbors, &c);
        assert_eq!(result.targets_sampled, 9); // round(34 × 0.25)
    }

    #[test]
    fn json_round_trip() {
        let g = karate_club();
        let mut c = config();
        c.target_fraction = 0.2;
        c.eval_laplace = false;
        let result = run_experiment(&g, &CommonNeighbors, &c);
        let back: ExperimentResult = serde_json::from_str(&result.to_json()).unwrap();
        assert_eq!(back, result);
    }
}
