//! The immutable per-epoch snapshot behind RCU-style epoch-pinned reads.
//!
//! An [`EpochState`] freezes everything a request evaluation depends on:
//! the [`DeltaGraph`] view at one graph version, the Δf calibrated for
//! that view, the service configuration, and the per-target
//! candidate/utility cache. The only interior mutability is the cache,
//! and it is *monotone* — entries are pure functions of `(graph, utility,
//! target)` computed on demand, so concurrent readers can only ever agree.
//!
//! `RecommendationService` keeps the current state behind an
//! `RwLock<Arc<EpochState>>` swap point. Readers [`pin`] the current
//! epoch by cloning the `Arc` — from then on they are completely
//! decoupled from writers: `apply_mutations` stages the next epoch on a
//! copy and swaps the pointer, never touching any state a pinned reader
//! can see. In-flight batches drain on the epoch they pinned, new
//! batches pin the new one, and the old state is freed when its last pin
//! drops. Mutation batches therefore never stall the read path, and a
//! pinned batch's results are bit-identical no matter how many epochs
//! race past it.
//!
//! [`pin`]: crate::serving::RecommendationService::pin

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use psr_gen::seed::{rng_from_seed, split_seed};
use psr_graph::{DeltaGraph, Direction, GraphView, NodeId};
use psr_obs::{fields, Telemetry};
use psr_privacy::{resolve_zero_class_distinct, topk};
use psr_utility::{CandidateSet, UtilityFunction, UtilityVector};

use super::{BatchRequest, Epoch, ServeError, Served, ServiceConfig};

/// Records one applied mutation batch into the trace ring
/// (`epoch.apply` with the batch's shape and invalidation footprint) and
/// the epoch counters. A no-op on disabled telemetry; the epoch swap
/// itself happened before this runs, so tracing can never perturb it.
pub(crate) fn trace_epoch_apply(telemetry: &Telemetry, epoch: &Epoch) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.trace().event(
        "epoch.apply",
        fields![
            "version" => epoch.version,
            "insertions" => epoch.insertions,
            "deletions" => epoch.deletions,
            "dirty" => epoch.dirty_targets.len(),
            "invalidated" => epoch.invalidated,
            "compacted" => epoch.compacted,
        ],
    );
    let metrics = telemetry.metrics();
    metrics.counter("epoch.applied").inc();
    metrics.counter("epoch.invalidated_targets").add(epoch.invalidated as u64);
    if epoch.compacted {
        metrics.counter("epoch.compactions").inc();
    }
}

/// A target's per-epoch serving state, computed once and shared by every
/// request about the target until a mutation dirties it.
#[derive(Debug)]
pub(crate) struct TargetState {
    pub(crate) candidates: CandidateSet,
    pub(crate) utilities: UtilityVector,
}

/// One frozen graph epoch: everything request evaluation reads, immutable
/// apart from the monotone per-target cache. See the module docs.
pub(crate) struct EpochState {
    pub(crate) version: u64,
    pub(crate) graph: DeltaGraph,
    pub(crate) sensitivity: f64,
    pub(crate) utility: Arc<dyn UtilityFunction>,
    pub(crate) config: ServiceConfig,
    cache: Mutex<HashMap<NodeId, Arc<TargetState>>>,
}

impl EpochState {
    pub(crate) fn new(
        version: u64,
        graph: DeltaGraph,
        sensitivity: f64,
        utility: Arc<dyn UtilityFunction>,
        config: ServiceConfig,
        cache: HashMap<NodeId, Arc<TargetState>>,
    ) -> Self {
        EpochState { version, graph, sensitivity, utility, config, cache: Mutex::new(cache) }
    }

    /// The target's epoch state: cached when present, computed (and
    /// cached) otherwise. Computation happens outside the cache lock —
    /// two workers racing on one target both compute the same pure value
    /// and the second insert is a no-op.
    pub(crate) fn target_state(&self, target: NodeId) -> Arc<TargetState> {
        if let Some(state) = self.cache.lock().expect("cache lock").get(&target) {
            return Arc::clone(state);
        }
        let candidates = CandidateSet::for_target(&self.graph, target);
        let utilities = self.utility.utilities(&self.graph, target, &candidates);
        let computed = Arc::new(TargetState { candidates, utilities });
        let mut cache = self.cache.lock().expect("cache lock");
        Arc::clone(cache.entry(target).or_insert(computed))
    }

    /// Evaluates one admitted request: candidate set and utility vector
    /// from the epoch cache, then `k` slots drawn from them with the
    /// configured engine.
    pub(crate) fn evaluate(
        &self,
        request: &BatchRequest,
        index: usize,
        seed: u64,
    ) -> Result<Served, ServeError> {
        // Per-request stream keyed by batch index: reordering worker
        // threads cannot change any request's result, and duplicate
        // targets within a batch get independent draws.
        let mut rng = rng_from_seed(split_seed(seed, 0xBA_0000 + index as u64));

        let state = self.target_state(request.target);
        if state.candidates.is_empty() {
            return Err(ServeError::NoCandidates { target: request.target });
        }
        let u = &state.utilities;
        let k = request.k.min(u.len());
        let top = topk::topk_with_engine(
            self.config.engine,
            u,
            k,
            self.config.epsilon_per_request,
            self.sensitivity,
            &mut rng,
        );

        // Resolve anonymous zero-class slots to distinct concrete nodes.
        let zero_slots = top.picks.iter().filter(|p| p.is_none()).count();
        let mut zero_picks =
            resolve_zero_class_distinct(zero_slots, u, &state.candidates, &mut rng).into_iter();
        let recommendations: Vec<NodeId> = top
            .picks
            .iter()
            .map(|pick| pick.unwrap_or_else(|| zero_picks.next().expect("class large enough")))
            .collect();

        Ok(Served {
            target: request.target,
            requested_k: request.k,
            recommendations,
            zero_class_picks: zero_slots,
            total_utility: top.total_utility,
            epsilon_spent: self.config.epsilon_per_request,
        })
    }

    /// A copy of the cache with the dirty targets dropped, plus how many
    /// cached entries were actually invalidated. The next epoch carries
    /// over every clean target's state (cheap: the map holds `Arc`s);
    /// this epoch's own cache is untouched, so pinned readers keep theirs.
    pub(crate) fn cache_without(
        &self,
        dirty_targets: &[NodeId],
        all_dirty: bool,
    ) -> (HashMap<NodeId, Arc<TargetState>>, usize) {
        let cache = self.cache.lock().expect("cache lock");
        if all_dirty {
            return (HashMap::new(), cache.len());
        }
        let mut next = cache.clone();
        drop(cache);
        let invalidated = dirty_targets.iter().filter(|t| next.remove(t).is_some()).count();
        (next, invalidated)
    }

    /// A plain clone of the cache, for epoch handoffs that do not change
    /// the edge set (explicit compaction).
    pub(crate) fn cache_clone(&self) -> HashMap<NodeId, Arc<TargetState>> {
        self.cache.lock().expect("cache lock").clone()
    }
}

/// A pinned read handle on one graph epoch. Cloning is an `Arc` bump;
/// holding a pin keeps that epoch's graph, Δf and cache alive and
/// *frozen* while the service moves on — see the module docs for the RCU
/// lifecycle. The pin reads as a [`GraphView`] of its epoch's graph.
#[derive(Clone)]
pub struct EpochPin {
    pub(crate) state: Arc<EpochState>,
}

impl EpochPin {
    /// The graph version this pin is frozen at.
    pub fn version(&self) -> u64 {
        self.state.version
    }

    /// The Δf calibrated for this epoch's graph.
    pub fn sensitivity(&self) -> f64 {
        self.state.sensitivity
    }

    /// The pinned epoch's graph view (base CSR plus overlay).
    pub fn graph(&self) -> &DeltaGraph {
        &self.state.graph
    }
}

impl std::fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochPin")
            .field("version", &self.state.version)
            .field("sensitivity", &self.state.sensitivity)
            .finish_non_exhaustive()
    }
}

impl GraphView for EpochPin {
    fn num_nodes(&self) -> usize {
        self.state.graph.num_nodes()
    }

    fn num_edges(&self) -> usize {
        self.state.graph.num_edges()
    }

    fn direction(&self) -> Direction {
        self.state.graph.direction()
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.state.graph.neighbors(v)
    }
}
