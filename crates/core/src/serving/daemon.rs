//! The always-on ingestion loop: multiplexed request/mutation streams
//! through the epoch-pinned worker pool, with bounded queues,
//! backpressure and serving metrics.
//!
//! [`run_daemon`] consumes a time-ordered sequence of [`DaemonEvent`]s.
//! The calling thread is the *ingestion* thread: it optionally paces on a
//! [`ReplayClock`], applies mutation batches inline (opening new epochs
//! through the RCU swap point — readers never notice), and for each
//! request batch pins the current epoch, runs budget admission (charging
//! and fsyncing the ledger in event order, which keeps admission
//! deterministic), and pushes the fully-admitted job onto a bounded
//! queue. Worker threads pop jobs and evaluate them against the epoch
//! each job *pinned at ingestion* — a batch admitted under epoch N drains
//! under epoch N even if ingestion has swapped in N+3 meanwhile. When the
//! queue is full the ingestion thread blocks: backpressure, not
//! unbounded buffering.
//!
//! Because admission order and per-batch seeds are fixed at ingestion,
//! the daemon's outputs are **bit-identical** for a given event sequence
//! regardless of worker count, queue capacity or pacing — the one-shot
//! `psr serve` path is literally this loop with no clock, and the
//! conformance tests hold the two equal. The one exception is
//! [`Epoch::invalidated`](super::Epoch) inside [`AppliedMutations`]: the
//! per-target cache fills lazily as workers evaluate, so how many
//! entries a mutation batch evicts depends on how far draining had
//! progressed. It is operational telemetry, outside the determinism
//! contract.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use psr_gen::seed::split_seed;
use psr_gen::stream::{ReplayClock, RequestEvent, StreamEvent};
use psr_graph::EdgeMutation;
use serde::Serialize;

use super::epoch::EpochPin;
use super::{BatchRequest, Epoch, MutationError, RecommendationService, ServeError, Served};

/// One item of the daemon's input sequence, in non-decreasing `time`
/// order. Produced by [`multiplex`] from the `psr_gen::stream`
/// generators, or assembled directly (the one-shot serve path).
#[derive(Debug, Clone, PartialEq)]
pub enum DaemonEvent {
    /// A batch of recommendation requests admitted and served together.
    Requests {
        /// Logical timestamp of the batch (its last event's time).
        time: u64,
        /// Seed of the batch's per-request RNG streams.
        seed: u64,
        /// The requests, in arrival order.
        requests: Vec<BatchRequest>,
    },
    /// A batch of edge mutations applied atomically as one epoch.
    Mutations {
        /// Logical timestamp of the batch (its last event's time).
        time: u64,
        /// The mutations, in arrival order.
        mutations: Vec<EdgeMutation>,
    },
}

impl DaemonEvent {
    /// The event's logical timestamp.
    pub fn time(&self) -> u64 {
        match self {
            DaemonEvent::Requests { time, .. } | DaemonEvent::Mutations { time, .. } => *time,
        }
    }
}

/// Merges a request stream and a mutation stream into one time-ordered
/// daemon input. Consecutive events are grouped into batches of at most
/// `request_batch` / `mutation_batch` (a batch carries its *last*
/// member's timestamp, i.e. it dispatches when complete); ties dispatch
/// the mutation batch first, so a request at time `t` always sees an
/// edge change at time `t`. Each request batch gets a deterministic seed
/// split from `seed` and its batch index.
///
/// # Panics
/// Panics if either batch size is zero.
pub fn multiplex(
    requests: &[RequestEvent],
    request_batch: usize,
    mutations: &[StreamEvent],
    mutation_batch: usize,
    seed: u64,
) -> Vec<DaemonEvent> {
    assert!(request_batch > 0, "request batch size must be at least 1");
    assert!(mutation_batch > 0, "mutation batch size must be at least 1");
    let request_batches: Vec<DaemonEvent> = requests
        .chunks(request_batch)
        .enumerate()
        .map(|(index, chunk)| DaemonEvent::Requests {
            time: chunk.last().expect("chunks are non-empty").time,
            seed: split_seed(seed, 0xDAE_0000 + index as u64),
            requests: chunk.iter().map(|r| BatchRequest { target: r.target, k: r.k }).collect(),
        })
        .collect();
    let mutation_batches: Vec<DaemonEvent> = mutations
        .chunks(mutation_batch)
        .map(|chunk| DaemonEvent::Mutations {
            time: chunk.last().expect("chunks are non-empty").time,
            mutations: chunk.iter().map(|e| e.mutation).collect(),
        })
        .collect();

    let mut merged = Vec::with_capacity(request_batches.len() + mutation_batches.len());
    let (mut r, mut m) =
        (request_batches.into_iter().peekable(), mutation_batches.into_iter().peekable());
    loop {
        match (r.peek(), m.peek()) {
            (Some(req), Some(mut_)) if mut_.time() <= req.time() => {
                merged.push(m.next().expect("peeked"));
            }
            (Some(_), _) => merged.push(r.next().expect("peeked")),
            (None, Some(_)) => merged.push(m.next().expect("peeked")),
            (None, None) => break,
        }
    }
    merged
}

/// Configuration of [`run_daemon`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DaemonConfig {
    /// Maximum request batches in flight between ingestion and the
    /// workers. A full queue blocks ingestion (backpressure).
    pub queue_capacity: usize,
    /// Worker threads; `None` falls back to the service's configured
    /// thread count, then to available parallelism.
    pub workers: Option<usize>,
    /// Pace ingestion on the events' logical timestamps. `None` (the
    /// one-shot serve path) ingests as fast as admission allows. Pacing
    /// never changes results, only their wall-clock spacing.
    pub clock: Option<ReplayClock>,
    /// Print a progress line (events ingested, batches drained, ETA) to
    /// stderr roughly this often. `None` stays silent. Heartbeats are
    /// operational output only and never touch results.
    pub heartbeat: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig { queue_capacity: 8, workers: None, clock: None, heartbeat: None }
    }
}

/// A mutation batch the daemon could not apply. The daemon stops at the
/// offending event; every request batch ingested before it still drains
/// (their charges are already durable).
#[derive(Debug)]
pub struct DaemonError {
    /// Index of the offending event in the input sequence.
    pub event: usize,
    /// What the serving layer rejected.
    pub source: MutationError,
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "daemon event #{}: {}", self.event, self.source)
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Outcomes of one request batch, in its batch's request order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Index among the run's request batches (ingestion order).
    pub index: usize,
    /// The batch's logical timestamp.
    pub time: u64,
    /// The graph epoch the batch was pinned to at admission.
    pub epoch: u64,
    /// Per-request outcomes.
    pub outcomes: Vec<Result<Served, ServeError>>,
}

/// One mutation batch the daemon applied, with the epoch it opened.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedMutations {
    /// The batch's logical timestamp.
    pub time: u64,
    /// The epoch summary returned by `apply_mutations`. Every field is
    /// deterministic except `invalidated`, which counts cache evictions
    /// and so depends on how far the workers had drained (see the
    /// [module docs](self)).
    pub epoch: Epoch,
}

/// Everything a finished daemon run produced.
#[derive(Debug)]
pub struct DaemonRun {
    /// Request batch results, in ingestion order.
    pub batches: Vec<BatchOutcome>,
    /// Applied mutation batches, in ingestion order.
    pub applied: Vec<AppliedMutations>,
    /// Serving metrics for the whole run.
    pub metrics: DaemonMetrics,
}

// The log₂ latency histogram and its quantile summary were born here
// and are re-exported for compatibility; they now live in `psr-obs` so
// the daemon, the serving layer, and the frontier share one bucketing.
pub use psr_obs::{LatencyHistogram, LatencySummary};

/// Per-epoch serving metrics: how much traffic each graph version
/// served and at what queue-to-completion latency.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EpochMetrics {
    /// The graph epoch.
    pub epoch: u64,
    /// Request batches pinned to this epoch.
    pub batches: usize,
    /// Requests in those batches.
    pub requests: usize,
    /// Queue-to-completion batch latency within this epoch.
    pub latency: LatencySummary,
}

/// Serving metrics for a whole daemon run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DaemonMetrics {
    /// Events ingested (request + mutation batches).
    pub events: usize,
    /// Request batches ingested.
    pub request_batches: usize,
    /// Mutation batches applied.
    pub mutation_batches: usize,
    /// Individual requests ingested.
    pub requests: usize,
    /// Requests answered with recommendations.
    pub served: usize,
    /// Requests refused because their target's ε budget ran out.
    pub rejected_for_budget: usize,
    /// Requests refused for any other reason (unknown target, zero `k`,
    /// empty candidate set).
    pub rejected_other: usize,
    /// Deepest the bounded queue ever got (≤ its capacity).
    pub max_queue_depth: usize,
    /// Wall-clock time from first ingestion to full drain, nanoseconds.
    pub wall_ns: u64,
    /// Requests processed per wall-clock second.
    pub throughput_rps: f64,
    /// Queue-to-completion batch latency across the run.
    pub latency: LatencySummary,
    /// The same, split by the epoch each batch was pinned to.
    pub per_epoch: Vec<EpochMetrics>,
}

/// One admitted request batch in flight from ingestion to a worker.
struct Job<'a> {
    slot: usize,
    pin: EpochPin,
    seed: u64,
    requests: &'a [BatchRequest],
    admissions: Vec<Option<ServeError>>,
    enqueued: Instant,
}

/// What a worker hands back for one job.
struct JobResult {
    epoch: u64,
    latency_ns: u64,
    outcomes: Vec<Result<Served, ServeError>>,
}

/// A minimal bounded MPMC queue: one ingestion producer, N worker
/// consumers, blocking `push` for backpressure and a `close` that lets
/// consumers drain and exit.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState { items: VecDeque::new(), closed: false, max_depth: 0 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Blocks while the queue is full (backpressure), then enqueues.
    fn push(&self, item: T) {
        let mut state = self.state.lock().expect("queue lock");
        while state.items.len() >= self.capacity {
            state = self.not_full.wait(state).expect("queue lock");
        }
        debug_assert!(!state.closed, "push after close");
        state.items.push_back(item);
        state.max_depth = state.max_depth.max(state.items.len());
        drop(state);
        self.not_empty.notify_one();
    }

    /// Blocks until an item arrives; `None` once the queue is closed and
    /// drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    /// No more pushes; consumers drain what is left and exit.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    fn max_depth(&self) -> usize {
        self.state.lock().expect("queue lock").max_depth
    }
}

/// Runs the ingestion loop over `events` until the input is exhausted
/// and every in-flight batch has drained (the daemon's clean-drain
/// shutdown), or until a mutation batch is rejected. See the [module
/// docs](self) for the threading model and the determinism contract.
///
/// # Panics
/// Panics if `config.queue_capacity` is zero or the ledger fails to
/// sync (see [`RecommendationService::serve_batch`]'s contract).
pub fn run_daemon(
    service: &RecommendationService,
    events: &[DaemonEvent],
    config: &DaemonConfig,
) -> Result<DaemonRun, DaemonError> {
    assert!(config.queue_capacity > 0, "queue capacity must be at least 1");
    let workers = config
        .workers
        .or(service.config().threads)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
        .max(1);

    let request_batches =
        events.iter().filter(|e| matches!(e, DaemonEvent::Requests { .. })).count();
    let queue: BoundedQueue<Job> = BoundedQueue::new(config.queue_capacity);
    let results: Mutex<Vec<Option<JobResult>>> =
        Mutex::new((0..request_batches).map(|_| None).collect());

    let mut applied = Vec::new();
    let mut ingested_batches = 0usize;
    let mut ingestion_error: Option<DaemonError> = None;
    // Heartbeat progress counters: operational only, never results.
    let ingested_events = AtomicUsize::new(0);
    let pushed_batches = AtomicUsize::new(0);
    let drained_batches = AtomicUsize::new(0);
    let ingestion_done = AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    // Same per-batch serve span the one-shot path opens in
                    // `serve_batch_pinned`; inert when telemetry is off.
                    let _span = service.telemetry.serve_span(job.pin.version(), job.requests.len());
                    let outcomes: Vec<Result<Served, ServeError>> = job
                        .requests
                        .iter()
                        .enumerate()
                        .map(|(index, request)| match &job.admissions[index] {
                            Some(err) => Err(err.clone()),
                            None => job.pin.state.evaluate(request, index, job.seed),
                        })
                        .collect();
                    let result = JobResult {
                        epoch: job.pin.version(),
                        latency_ns: job.enqueued.elapsed().as_nanos() as u64,
                        outcomes,
                    };
                    results.lock().expect("results lock")[job.slot] = Some(result);
                    drained_batches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        if let Some(period) = config.heartbeat {
            let (ingested_events, drained_batches, pushed_batches, ingestion_done) =
                (&ingested_events, &drained_batches, &pushed_batches, &ingestion_done);
            scope.spawn(move || {
                let total = events.len();
                let mut next_report = period;
                loop {
                    std::thread::sleep(Duration::from_millis(25));
                    let ingested = ingested_events.load(Ordering::Relaxed);
                    let drained = drained_batches.load(Ordering::Relaxed);
                    if ingestion_done.load(Ordering::Relaxed)
                        && drained >= pushed_batches.load(Ordering::Relaxed)
                    {
                        break;
                    }
                    let elapsed = start.elapsed();
                    if elapsed < next_report {
                        continue;
                    }
                    next_report += period;
                    let eta = if ingested == 0 {
                        "?".to_owned()
                    } else {
                        let remaining = (total - ingested) as f64 / ingested as f64;
                        format!("{:.0}", elapsed.as_secs_f64() * remaining)
                    };
                    eprintln!(
                        "[psr daemon] t+{:.0}s: {ingested}/{total} events ingested, \
                         {drained} request batches drained, ETA {eta}s",
                        elapsed.as_secs_f64()
                    );
                }
            });
        }

        // Ingestion runs on the calling thread.
        let mut last_tick = events.first().map_or(0, DaemonEvent::time);
        for (index, event) in events.iter().enumerate() {
            if let Some(clock) = &config.clock {
                std::thread::sleep(clock.delay(last_tick, event.time()));
            }
            last_tick = event.time();
            match event {
                DaemonEvent::Mutations { time, mutations } => {
                    match service.apply_mutations(mutations) {
                        Ok(epoch) => applied.push(AppliedMutations { time: *time, epoch }),
                        Err(source) => {
                            ingestion_error = Some(DaemonError { event: index, source });
                            break;
                        }
                    }
                }
                DaemonEvent::Requests { seed, requests, .. } => {
                    let pin = service.pin();
                    // Admission charges + fsyncs the ledger in event
                    // order, before the batch can produce any output.
                    let admissions = service.admit_batch(&pin, requests);
                    queue.push(Job {
                        slot: ingested_batches,
                        pin,
                        seed: *seed,
                        requests,
                        admissions,
                        enqueued: Instant::now(),
                    });
                    ingested_batches += 1;
                    pushed_batches.fetch_add(1, Ordering::Relaxed);
                }
            }
            ingested_events.fetch_add(1, Ordering::Relaxed);
        }
        ingestion_done.store(true, Ordering::Relaxed);
        queue.close();
    });
    let wall_ns = start.elapsed().as_nanos() as u64;
    let max_queue_depth = queue.max_depth();

    if let Some(error) = ingestion_error {
        return Err(error);
    }

    // Reassemble results in ingestion order and fold the metrics. The
    // registry histogram mirrors the run's latency population for
    // `--metrics-out`; on a disabled registry the handle is inert.
    let batch_latency = service.telemetry().metrics().histogram("daemon.batch_latency_ns");
    let results = results.into_inner().expect("results lock");
    let mut batches = Vec::with_capacity(request_batches);
    let mut histogram = LatencyHistogram::default();
    let mut per_epoch: Vec<(u64, usize, usize, LatencyHistogram)> = Vec::new();
    let (mut requests_total, mut served, mut budget_rejected, mut other_rejected) = (0, 0, 0, 0);
    let mut request_events = events.iter().filter_map(|e| match e {
        DaemonEvent::Requests { time, .. } => Some(*time),
        _ => None,
    });
    for (slot, result) in results.into_iter().enumerate() {
        let result = result.expect("every ingested batch drained");
        let time = request_events.next().expect("one time per request batch");
        requests_total += result.outcomes.len();
        for outcome in &result.outcomes {
            match outcome {
                Ok(_) => served += 1,
                Err(ServeError::BudgetExhausted { .. }) => budget_rejected += 1,
                Err(_) => other_rejected += 1,
            }
        }
        histogram.record(result.latency_ns);
        batch_latency.record(result.latency_ns);
        match per_epoch.iter_mut().find(|(epoch, ..)| *epoch == result.epoch) {
            Some((_, n_batches, n_requests, epoch_hist)) => {
                *n_batches += 1;
                *n_requests += result.outcomes.len();
                epoch_hist.record(result.latency_ns);
            }
            None => {
                let mut epoch_hist = LatencyHistogram::default();
                epoch_hist.record(result.latency_ns);
                per_epoch.push((result.epoch, 1, result.outcomes.len(), epoch_hist));
            }
        }
        batches.push(BatchOutcome {
            index: slot,
            time,
            epoch: result.epoch,
            outcomes: result.outcomes,
        });
    }
    per_epoch.sort_by_key(|&(epoch, ..)| epoch);

    let metrics = DaemonMetrics {
        events: events.len(),
        request_batches,
        mutation_batches: applied.len(),
        requests: requests_total,
        served,
        rejected_for_budget: budget_rejected,
        rejected_other: other_rejected,
        max_queue_depth,
        wall_ns,
        throughput_rps: if wall_ns == 0 {
            0.0
        } else {
            requests_total as f64 / (wall_ns as f64 / 1e9)
        },
        latency: histogram.summary(),
        per_epoch: per_epoch
            .into_iter()
            .map(|(epoch, n_batches, n_requests, hist)| EpochMetrics {
                epoch,
                batches: n_batches,
                requests: n_requests,
                latency: hist.summary(),
            })
            .collect(),
    };

    Ok(DaemonRun { batches, applied, metrics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_datasets::toy::karate_club;
    use psr_gen::rng_from_seed;
    use psr_gen::stream::{edge_stream, request_stream, RequestStreamParams, StreamParams};
    use psr_utility::CommonNeighbors;

    use crate::serving::ServiceConfig;

    fn service() -> RecommendationService {
        RecommendationService::new(
            karate_club(),
            Box::new(CommonNeighbors),
            ServiceConfig { budget_per_target: f64::INFINITY, ..Default::default() },
        )
    }

    fn streams() -> (Vec<RequestEvent>, Vec<StreamEvent>) {
        let graph = karate_club();
        let requests = request_stream(
            &graph,
            RequestStreamParams { events: 40, k: 3 },
            &mut rng_from_seed(21),
        );
        let mutations = edge_stream(
            &graph,
            StreamParams { events: 12, insert_fraction: 0.6 },
            &mut rng_from_seed(22),
        );
        (requests, mutations)
    }

    #[test]
    fn multiplex_orders_batches_by_time_with_mutations_first_on_ties() {
        let (requests, mutations) = streams();
        let events = multiplex(&requests, 8, &mutations, 4, 7);
        assert_eq!(
            events.iter().filter(|e| matches!(e, DaemonEvent::Requests { .. })).count(),
            requests.len().div_ceil(8)
        );
        assert_eq!(
            events.iter().filter(|e| matches!(e, DaemonEvent::Mutations { .. })).count(),
            mutations.len().div_ceil(4)
        );
        for pair in events.windows(2) {
            assert!(pair[0].time() <= pair[1].time(), "events must be time-ordered");
            if pair[0].time() == pair[1].time() {
                assert!(
                    !(matches!(pair[0], DaemonEvent::Requests { .. })
                        && matches!(pair[1], DaemonEvent::Mutations { .. })),
                    "ties dispatch mutations before requests"
                );
            }
        }
        // Batch seeds are distinct and deterministic.
        let again = multiplex(&requests, 8, &mutations, 4, 7);
        assert_eq!(events, again);
        let seeds: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                DaemonEvent::Requests { seed, .. } => Some(*seed),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(distinct.len(), seeds.len());
    }

    #[test]
    fn daemon_results_are_worker_count_invariant() {
        let (requests, mutations) = streams();
        let events = multiplex(&requests, 5, &mutations, 3, 99);
        let run = |workers| {
            let svc = service();
            run_daemon(
                &svc,
                &events,
                &DaemonConfig { workers: Some(workers), queue_capacity: 2, ..Default::default() },
            )
            .unwrap()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.batches, eight.batches);
        // `epoch.invalidated` is timing-dependent telemetry (see the
        // module docs); everything else about applied epochs is fixed.
        let applied_key = |run: &DaemonRun| {
            run.applied
                .iter()
                .map(|a| {
                    (
                        a.time,
                        a.epoch.version,
                        a.epoch.insertions,
                        a.epoch.deletions,
                        a.epoch.dirty_targets.clone(),
                        a.epoch.compacted,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(applied_key(&one), applied_key(&eight));
        assert_eq!(one.metrics.served, eight.metrics.served);
        assert!(one.metrics.served > 0);
        assert!(one.metrics.max_queue_depth <= 2, "bounded queue must bound depth");
    }

    #[test]
    fn daemon_equals_manual_replay() {
        // The daemon is sugar over pin + admit + evaluate: replaying the
        // same events by hand against a fresh service matches exactly.
        let (requests, mutations) = streams();
        let events = multiplex(&requests, 7, &mutations, 5, 123);
        let svc = service();
        let run = run_daemon(&svc, &events, &DaemonConfig::default()).unwrap();

        let manual_svc = service();
        let mut manual = Vec::new();
        for event in &events {
            match event {
                DaemonEvent::Mutations { mutations, .. } => {
                    manual_svc.apply_mutations(mutations).unwrap();
                }
                DaemonEvent::Requests { seed, requests, .. } => {
                    manual.push(manual_svc.serve_batch(requests, *seed));
                }
            }
        }
        assert_eq!(run.batches.len(), manual.len());
        for (batch, expected) in run.batches.iter().zip(&manual) {
            assert_eq!(&batch.outcomes, expected);
        }
    }

    #[test]
    fn metrics_account_for_every_request() {
        let svc = RecommendationService::new(
            karate_club(),
            Box::new(CommonNeighbors),
            ServiceConfig {
                epsilon_per_request: 1.0,
                budget_per_target: 2.0,
                ..Default::default()
            },
        );
        // Eight requests for one target at budget 2 ⇒ 2 served, 6 budget
        // rejections; an unknown target adds one "other" rejection.
        let mut batch: Vec<BatchRequest> = vec![BatchRequest { target: 0, k: 2 }; 8];
        batch.push(BatchRequest { target: 999, k: 1 });
        let events = vec![DaemonEvent::Requests { time: 1, seed: 5, requests: batch }];
        let run = run_daemon(&svc, &events, &DaemonConfig::default()).unwrap();
        let m = &run.metrics;
        assert_eq!(m.requests, 9);
        assert_eq!(m.served, 2);
        assert_eq!(m.rejected_for_budget, 6);
        assert_eq!(m.rejected_other, 1);
        assert_eq!(m.request_batches, 1);
        assert_eq!(m.mutation_batches, 0);
        assert_eq!(m.latency.count, 1);
        assert!(m.latency.max_ns > 0);
        assert!(m.throughput_rps > 0.0);
        assert_eq!(m.per_epoch.len(), 1);
        assert_eq!(m.per_epoch[0].epoch, 0);
        assert_eq!(m.per_epoch[0].requests, 9);
    }

    #[test]
    fn per_epoch_metrics_split_on_mutation_batches() {
        let svc = service();
        let events = vec![
            DaemonEvent::Requests {
                time: 1,
                seed: 1,
                requests: vec![BatchRequest { target: 0, k: 2 }],
            },
            DaemonEvent::Mutations { time: 2, mutations: vec![EdgeMutation::insert(24, 16)] },
            DaemonEvent::Requests {
                time: 3,
                seed: 2,
                requests: vec![BatchRequest { target: 1, k: 2 }, BatchRequest { target: 2, k: 1 }],
            },
        ];
        let run = run_daemon(&svc, &events, &DaemonConfig::default()).unwrap();
        assert_eq!(run.batches[0].epoch, 0);
        assert_eq!(run.batches[1].epoch, 1);
        let epochs: Vec<u64> = run.metrics.per_epoch.iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![0, 1]);
        assert_eq!(run.metrics.per_epoch[0].requests, 1);
        assert_eq!(run.metrics.per_epoch[1].requests, 2);
        assert_eq!(run.applied.len(), 1);
        assert_eq!(run.applied[0].epoch.version, 1);
    }

    #[test]
    fn rejected_mutation_stops_the_daemon_with_context() {
        let svc = service();
        let events = vec![
            DaemonEvent::Requests {
                time: 1,
                seed: 1,
                requests: vec![BatchRequest { target: 0, k: 1 }],
            },
            DaemonEvent::Mutations {
                time: 2,
                // karate club already has 0-1: duplicate insert.
                mutations: vec![EdgeMutation::insert(0, 1)],
            },
        ];
        let err = run_daemon(&svc, &events, &DaemonConfig::default()).unwrap_err();
        assert_eq!(err.event, 1);
        assert!(err.to_string().contains("daemon event #1"));
        assert_eq!(svc.epoch(), 0, "failed batch must not open an epoch");
    }

    #[test]
    fn replay_clock_paces_without_changing_results() {
        let (requests, mutations) = streams();
        let events = multiplex(&requests[..10], 5, &mutations[..2], 2, 3);
        let unpaced = run_daemon(&service(), &events, &DaemonConfig::default()).unwrap();
        let start = Instant::now();
        let paced = run_daemon(
            &service(),
            &events,
            &DaemonConfig {
                // ~1ms per tick: measurable but quick.
                clock: Some(ReplayClock::new(1000.0)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(2), "pacing must sleep");
        for (a, b) in unpaced.batches.iter().zip(&paced.batches) {
            assert_eq!(a.outcomes, b.outcomes, "pacing must not change results");
        }
    }

    #[test]
    fn metrics_json_shape_is_pinned() {
        // The histogram moved to psr-obs; the wire shape of
        // DaemonMetrics/EpochMetrics must not move with it. Reports and
        // downstream scrapers key on these exact field names and order.
        let svc = service();
        let events = vec![
            DaemonEvent::Requests {
                time: 1,
                seed: 1,
                requests: vec![BatchRequest { target: 0, k: 2 }],
            },
            DaemonEvent::Mutations { time: 2, mutations: vec![EdgeMutation::insert(24, 16)] },
            DaemonEvent::Requests {
                time: 3,
                seed: 2,
                requests: vec![BatchRequest { target: 1, k: 2 }],
            },
        ];
        let run = run_daemon(&svc, &events, &DaemonConfig::default()).unwrap();
        let json = serde_json::to_string(&run.metrics).unwrap();
        assert!(
            json.starts_with(
                "{\"events\":3,\"request_batches\":2,\"mutation_batches\":1,\"requests\":2,"
            ),
            "{json}"
        );
        for key in [
            "\"served\":",
            "\"rejected_for_budget\":",
            "\"rejected_other\":",
            "\"max_queue_depth\":",
            "\"wall_ns\":",
            "\"throughput_rps\":",
            "\"latency\":{\"count\":2,\"p50_ns\":",
            "\"p95_ns\":",
            "\"p99_ns\":",
            "\"max_ns\":",
            "\"per_epoch\":[{\"epoch\":0,\"batches\":1,\"requests\":1,\"latency\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
