//! Shared primitives for append-only, crash-safe line journals.
//!
//! Two subsystems persist state as line-oriented text journals with the
//! same durability story: the per-target budget [`ledger`](super::ledger)
//! and the frontier sweep's results checkpoint (`psr-frontier`). Both
//! need the same three building blocks, extracted here so the formats
//! stay idiom-identical:
//!
//! * [`fnv1a64`] — the checksum guarding every line,
//! * [`seal`] / [`unseal`] — payload ↔ checksummed line framing,
//! * [`LineSplitter`] — newline iteration that tracks the byte length of
//!   the *valid prefix*, which is exactly what truncate-on-replay needs.
//!
//! The replay contract both journals follow: accept the longest prefix of
//! lines that unseal, drop a torn or corrupt tail (the signature of a
//! crash mid-append), truncate the file back to the valid prefix and
//! append from there. A *valid* header that disagrees with the caller's
//! configuration is a hard error — silently re-interpreting old records
//! against a different configuration would corrupt whatever the journal
//! accounts for.

/// FNV-1a 64-bit, the checksum guarding every journal line. Not
/// cryptographic — it detects torn writes and bit rot, which is all a
/// single-writer journal needs.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Formats a journal line: payload plus its checksum, newline-terminated.
#[must_use]
pub fn seal(payload: &str) -> String {
    format!("{payload} {:016x}\n", fnv1a64(payload.as_bytes()))
}

/// Splits a newline-terminated line into payload and checksum and
/// verifies the seal. `None` for torn or corrupt lines.
#[must_use]
pub fn unseal(line: &str) -> Option<&str> {
    let body = line.strip_suffix('\n')?;
    let (payload, crc) = body.rsplit_once(' ')?;
    let crc = (crc.len() == 16).then(|| u64::from_str_radix(crc, 16).ok()).flatten()?;
    (crc == fnv1a64(payload.as_bytes())).then_some(payload)
}

/// Iterates newline-terminated lines (terminator included) while
/// tracking how many bytes the *previous* items covered — exactly what
/// valid-prefix truncation needs. A trailing fragment without `\n` is
/// yielded too (it will fail [`unseal`]) but never counted as consumed.
#[derive(Debug)]
pub struct LineSplitter<'a> {
    text: &'a str,
    offset: usize,
    consumed: usize,
}

impl<'a> LineSplitter<'a> {
    /// Starts splitting at the beginning of `text`.
    #[must_use]
    pub fn new(text: &'a str) -> Self {
        LineSplitter { text, offset: 0, consumed: 0 }
    }

    /// Bytes covered by all fully-consumed (newline-terminated) lines
    /// yielded so far.
    #[must_use]
    pub fn consumed_before_current(&self) -> usize {
        self.consumed
    }
}

impl<'a> Iterator for LineSplitter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.offset >= self.text.len() {
            return None;
        }
        self.consumed = self.offset;
        let rest = &self.text[self.offset..];
        let line = match rest.find('\n') {
            Some(pos) => &rest[..=pos],
            None => rest,
        };
        self.offset += line.len();
        if line.ends_with('\n') {
            self.consumed = self.offset;
        }
        Some(line)
    }
}

/// Reads a journal file as text, tolerating a torn non-UTF8 tail: the
/// longest valid UTF-8 prefix is returned and the rest is treated like
/// any other corrupt tail (it will fail [`unseal`] at its first line).
/// Journals are single-writer text we wrote ourselves, so a non-UTF8
/// byte *is* corruption — but only from that byte onward.
#[must_use]
pub fn lossy_utf8_prefix(bytes: Vec<u8>) -> String {
    match String::from_utf8(bytes) {
        Ok(text) => text,
        Err(err) => {
            let valid = err.utf8_error().valid_up_to();
            let bytes = err.into_bytes();
            std::str::from_utf8(&bytes[..valid]).expect("checked prefix").to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_round_trips() {
        let line = seal("R 7 payload");
        assert!(line.ends_with('\n'));
        assert_eq!(unseal(&line), Some("R 7 payload"));
    }

    #[test]
    fn unseal_rejects_tampering_and_torn_lines() {
        let line = seal("R 7 payload");
        assert_eq!(unseal(&line.replace('7', "8")), None);
        assert_eq!(unseal(&line[..line.len() - 1]), None, "missing newline means torn");
        assert_eq!(unseal("no checksum at all\n"), None);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn line_splitter_tracks_valid_prefix() {
        let text = "one\ntwo\nthr";
        let mut lines = LineSplitter::new(text);
        assert_eq!(lines.next(), Some("one\n"));
        assert_eq!(lines.consumed_before_current(), 4);
        assert_eq!(lines.next(), Some("two\n"));
        assert_eq!(lines.consumed_before_current(), 8);
        assert_eq!(lines.next(), Some("thr"));
        assert_eq!(lines.consumed_before_current(), 8, "torn tail never counts as consumed");
        assert_eq!(lines.next(), None);
        assert_eq!(lines.consumed_before_current(), 8);
    }

    #[test]
    fn lossy_prefix_stops_at_first_bad_byte() {
        let mut bytes = b"good line\n".to_vec();
        bytes.extend([0xff, 0xfe]);
        bytes.extend(b"after");
        assert_eq!(lossy_utf8_prefix(bytes), "good line\n");
        assert_eq!(lossy_utf8_prefix(b"all clean\n".to_vec()), "all clean\n");
    }
}
