//! Persistent per-target ε-budget ledgers.
//!
//! Budgets are the one piece of serving state that must never reset: a
//! restart that forgot per-target spend would hand every adversary a
//! fresh ε allowance (the composed-budget checks in `psr-attack` exist
//! to catch exactly that). This module extracts the in-memory
//! [`BudgetAccountant`] behind the [`BudgetLedger`] trait and adds
//! [`JournalLedger`], an append-only on-disk journal with crash-safe
//! replay.
//!
//! # Durability contract
//!
//! Charges are staged in memory by [`BudgetLedger::try_charge`] and made
//! durable by [`BudgetLedger::sync`], which appends the staged lines and
//! `fsync`s **once per admitted batch**. The serving layer calls `sync`
//! after admission and *before any result is released*, so the invariant
//! at every point in time is:
//!
//! > every released recommendation's charge is already on disk.
//!
//! A crash can therefore lose charges that were admitted but whose
//! results were never released (the conservative direction — replay may
//! under-count spend the adversary never observed an answer for), but it
//! can never under-count spend behind an answer that got out.
//!
//! # Journal format and replay
//!
//! The journal is line-oriented text: a header naming the budget, then
//! one line per charge, each line carrying an FNV-1a-64 checksum of its
//! own content. ε values travel as exact `f64` bit patterns, so replayed
//! spend is bit-identical to what admission recorded. [`JournalLedger::
//! open`] replays the longest valid prefix, drops a torn or corrupt tail
//! (the signature of a crash mid-append), truncates the file back to the
//! valid prefix and appends from there. A *valid* header whose budget
//! differs from the caller's is a hard error — silently re-interpreting
//! old spend against a different budget would corrupt the accounting.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use psr_graph::NodeId;
use psr_obs::{Histogram, MetricsRegistry};

use super::budget::{BudgetAccountant, BudgetExceeded};
use super::journal::{lossy_utf8_prefix, seal, unseal, LineSplitter};

/// Per-target ε spend tracking with explicit durability points. See the
/// [module docs](self) for the contract; [`BudgetAccountant`] is the
/// volatile reference implementation, [`JournalLedger`] the durable one.
pub trait BudgetLedger: Send {
    /// The configured per-target budget.
    fn budget_per_target(&self) -> f64;

    /// Cumulative ε already spent on `target`.
    fn spent(&self, target: NodeId) -> f64;

    /// Budget still available for `target` (never negative).
    fn remaining(&self, target: NodeId) -> f64 {
        (self.budget_per_target() - self.spent(target)).max(0.0)
    }

    /// Admits and stages a charge of `eps` against `target`, or rejects
    /// it without recording anything. Staged charges are observable
    /// through [`BudgetLedger::spent`] immediately but durable only
    /// after the next [`BudgetLedger::sync`].
    fn try_charge(&mut self, target: NodeId, eps: f64) -> Result<(), BudgetExceeded>;

    /// Makes every staged charge durable. Called once per admitted batch,
    /// before any of the batch's results are released.
    fn sync(&mut self) -> io::Result<()>;

    /// Forgets all spend (explicit privacy epoch rollover), durably.
    fn reset(&mut self) -> io::Result<()>;

    /// Human-readable description of the backing store, for reports.
    fn description(&self) -> String {
        "memory".to_owned()
    }

    /// Attaches telemetry handles minted from `metrics` (e.g. the fsync
    /// latency histogram of a durable ledger). Telemetry observes, never
    /// participates: instrumented and uninstrumented ledgers admit and
    /// persist identically. Default: nothing to instrument.
    fn instrument(&mut self, _metrics: &MetricsRegistry) {}

    /// Writes the ledger's point-in-time budget gauges into `metrics`:
    /// the configured budget, how many targets have spent anything, and
    /// one `budget.eps_spent.t<target>` gauge per charged target.
    /// Default: nothing to export.
    fn export_spend_gauges(&self, _metrics: &MetricsRegistry) {}
}

impl BudgetLedger for BudgetAccountant {
    fn budget_per_target(&self) -> f64 {
        BudgetAccountant::budget_per_target(self)
    }

    fn spent(&self, target: NodeId) -> f64 {
        BudgetAccountant::spent(self, target)
    }

    fn try_charge(&mut self, target: NodeId, eps: f64) -> Result<(), BudgetExceeded> {
        BudgetAccountant::try_charge(self, target, eps)
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(()) // volatile: nothing to persist
    }

    fn reset(&mut self) -> io::Result<()> {
        BudgetAccountant::reset(self);
        Ok(())
    }

    fn export_spend_gauges(&self, metrics: &MetricsRegistry) {
        if !metrics.is_enabled() {
            return;
        }
        metrics.gauge("budget.eps_per_target").set(self.budget_per_target());
        let spend = self.spent_per_target();
        metrics.gauge("budget.targets_charged").set(spend.len() as f64);
        for (target, eps) in spend {
            metrics.gauge(&format!("budget.eps_spent.t{target}")).set(eps);
        }
    }
}

/// Magic + version prefix of the journal header line.
const HEADER_TAG: &str = "psrledger v1";

/// One replayed charge, parsed from a valid journal line.
fn parse_charge(payload: &str) -> Option<(NodeId, f64)> {
    let rest = payload.strip_prefix("C ")?;
    let (target, bits) = rest.split_once(' ')?;
    let target: NodeId = target.parse().ok()?;
    let eps = f64::from_bits(u64::from_str_radix(bits, 16).ok()?);
    (eps > 0.0 && eps.is_finite()).then_some((target, eps))
}

/// An append-only on-disk [`BudgetLedger`]. See the [module docs](self)
/// for the format, the replay rules and the durability contract.
#[derive(Debug)]
pub struct JournalLedger {
    path: PathBuf,
    file: File,
    accountant: BudgetAccountant,
    /// Lines staged by `try_charge`, written and fsynced by `sync`.
    pending: String,
    /// Per-sync write+fsync latency; inert until `instrument` is called.
    fsync_latency: Histogram,
}

impl JournalLedger {
    /// Opens (or creates) the journal at `path` with the given per-target
    /// budget, replaying any surviving spend.
    ///
    /// Replay accepts the longest valid prefix: a torn or corrupt *tail*
    /// is dropped and truncated away (crash mid-append), and a torn
    /// *header* means no charge was ever durable, so the file restarts
    /// fresh. A **valid** header carrying a different budget is an
    /// [`io::ErrorKind::InvalidData`] error.
    ///
    /// # Panics
    /// Panics unless the budget is positive (`f64::INFINITY` disables
    /// enforcement), matching [`BudgetAccountant::new`].
    pub fn open(path: impl AsRef<Path>, budget_per_target: f64) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut accountant = BudgetAccountant::new(budget_per_target);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let content = lossy_utf8_prefix(bytes);

        let header = seal(&format!("{HEADER_TAG} {:016x}", budget_per_target.to_bits()));
        let mut valid_len = 0usize;
        let mut lines = LineSplitter::new(&content);
        match lines.next().and_then(unseal) {
            Some(payload) if payload.starts_with(HEADER_TAG) => {
                let bits = payload
                    .strip_prefix(HEADER_TAG)
                    .and_then(|rest| u64::from_str_radix(rest.trim_start(), 16).ok())
                    .ok_or_else(|| corrupt_header(&path))?;
                if bits != budget_per_target.to_bits() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "budget journal {} was written for budget {}, not {budget_per_target}",
                            path.display(),
                            f64::from_bits(bits)
                        ),
                    ));
                }
                valid_len = lines.consumed_before_current();
                // Replay the longest valid charge prefix.
                while let Some(line) = lines.next() {
                    match unseal(line).and_then(parse_charge) {
                        Some((target, eps)) => {
                            accountant.restore(target, eps);
                            valid_len = lines.consumed_before_current();
                        }
                        None => break, // torn/corrupt tail: drop the rest
                    }
                }
            }
            // Empty file, torn header, or not our format with no valid
            // header: nothing was ever durable here — start fresh.
            _ => {}
        }

        file.set_len(valid_len as u64)?;
        file.seek(SeekFrom::End(0))?;
        if valid_len == 0 {
            file.write_all(header.as_bytes())?;
            file.sync_data()?;
        }
        Ok(JournalLedger {
            path,
            file,
            accountant,
            pending: String::new(),
            fsync_latency: Histogram::default(),
        })
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn corrupt_header(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("budget journal {} has a malformed header", path.display()),
    )
}

impl BudgetLedger for JournalLedger {
    fn budget_per_target(&self) -> f64 {
        self.accountant.budget_per_target()
    }

    fn spent(&self, target: NodeId) -> f64 {
        self.accountant.spent(target)
    }

    fn try_charge(&mut self, target: NodeId, eps: f64) -> Result<(), BudgetExceeded> {
        self.accountant.try_charge(target, eps)?;
        self.pending.push_str(&seal(&format!("C {target} {:016x}", eps.to_bits())));
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        // The clock is only read when the histogram is live, so an
        // uninstrumented sync pays nothing.
        let start = self.fsync_latency.is_enabled().then(Instant::now);
        self.file.write_all(self.pending.as_bytes())?;
        self.file.sync_data()?;
        self.pending.clear();
        if let Some(start) = start {
            self.fsync_latency
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Ok(())
    }

    fn reset(&mut self) -> io::Result<()> {
        self.pending.clear();
        self.accountant.reset();
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        let header =
            seal(&format!("{HEADER_TAG} {:016x}", self.accountant.budget_per_target().to_bits()));
        self.file.write_all(header.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    fn description(&self) -> String {
        format!("journal:{}", self.path.display())
    }

    fn instrument(&mut self, metrics: &MetricsRegistry) {
        self.fsync_latency = metrics.histogram("ledger.fsync_ns");
    }

    fn export_spend_gauges(&self, metrics: &MetricsRegistry) {
        BudgetLedger::export_spend_gauges(&self.accountant, metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch path (no tempfile crate in the offline vendor
    /// set): per-process id plus a per-test counter under the OS temp dir.
    pub(crate) fn scratch_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("psr-ledger-{tag}-{}-{n}.journal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn line_seal_round_trips_and_rejects_tampering() {
        let line = seal("C 42 3ff0000000000000");
        assert!(line.ends_with('\n'));
        assert_eq!(unseal(&line), Some("C 42 3ff0000000000000"));
        let tampered = line.replace("42", "43");
        assert_eq!(unseal(&tampered), None);
        let torn = &line[..line.len() - 2];
        assert_eq!(unseal(torn), None, "missing newline means torn");
    }

    #[test]
    fn fresh_journal_charges_and_replays() {
        let path = scratch_path("fresh");
        let _cleanup = Cleanup(path.clone());
        {
            let mut ledger = JournalLedger::open(&path, 2.0).unwrap();
            assert_eq!(BudgetLedger::remaining(&ledger, 5), 2.0);
            ledger.try_charge(5, 1.0).unwrap();
            ledger.try_charge(9, 0.25).unwrap();
            ledger.sync().unwrap();
        } // dropped without any shutdown hook: durability is sync-only
        let ledger = JournalLedger::open(&path, 2.0).unwrap();
        assert_eq!(BudgetLedger::spent(&ledger, 5), 1.0);
        assert_eq!(BudgetLedger::spent(&ledger, 9), 0.25);
        assert_eq!(BudgetLedger::remaining(&ledger, 5), 1.0);
        assert!(ledger.description().contains("journal:"));
    }

    #[test]
    fn unsynced_charges_are_not_durable() {
        let path = scratch_path("unsynced");
        let _cleanup = Cleanup(path.clone());
        {
            let mut ledger = JournalLedger::open(&path, 2.0).unwrap();
            ledger.try_charge(1, 1.0).unwrap();
            ledger.sync().unwrap();
            ledger.try_charge(1, 0.5).unwrap();
            // staged spend is visible in memory…
            assert_eq!(BudgetLedger::spent(&ledger, 1), 1.5);
            // …but the process dies before sync.
        }
        let ledger = JournalLedger::open(&path, 2.0).unwrap();
        assert_eq!(BudgetLedger::spent(&ledger, 1), 1.0, "only synced spend survives");
    }

    #[test]
    fn corrupt_tail_is_dropped_and_truncated() {
        let path = scratch_path("tail");
        let _cleanup = Cleanup(path.clone());
        {
            let mut ledger = JournalLedger::open(&path, 10.0).unwrap();
            ledger.try_charge(3, 1.0).unwrap();
            ledger.try_charge(4, 1.0).unwrap();
            ledger.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage tail bytes.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"C 7 3ff00000").unwrap(); // torn line, no newline
        drop(file);
        let before = std::fs::metadata(&path).unwrap().len();
        {
            let ledger = JournalLedger::open(&path, 10.0).unwrap();
            assert_eq!(BudgetLedger::spent(&ledger, 3), 1.0);
            assert_eq!(BudgetLedger::spent(&ledger, 4), 1.0);
            assert_eq!(BudgetLedger::spent(&ledger, 7), 0.0, "torn charge dropped");
        }
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "the torn tail must be truncated away");
        // A third open sees a clean journal.
        let ledger = JournalLedger::open(&path, 10.0).unwrap();
        assert_eq!(BudgetLedger::spent(&ledger, 3), 1.0);
    }

    #[test]
    fn budget_mismatch_is_a_hard_error() {
        let path = scratch_path("mismatch");
        let _cleanup = Cleanup(path.clone());
        drop(JournalLedger::open(&path, 2.0).unwrap());
        let err = JournalLedger::open(&path, 3.0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn reset_durably_forgets_spend() {
        let path = scratch_path("reset");
        let _cleanup = Cleanup(path.clone());
        {
            let mut ledger = JournalLedger::open(&path, 2.0).unwrap();
            ledger.try_charge(1, 2.0).unwrap();
            ledger.sync().unwrap();
            assert!(ledger.try_charge(1, 1.0).is_err());
            ledger.reset().unwrap();
            assert_eq!(BudgetLedger::remaining(&ledger, 1), 2.0);
            ledger.try_charge(1, 1.0).unwrap();
            ledger.sync().unwrap();
        }
        let ledger = JournalLedger::open(&path, 2.0).unwrap();
        assert_eq!(BudgetLedger::spent(&ledger, 1), 1.0, "post-reset spend only");
    }

    #[test]
    fn non_journal_file_restarts_fresh() {
        let path = scratch_path("foreign");
        let _cleanup = Cleanup(path.clone());
        std::fs::write(&path, b"not a ledger at all\n\x00\xfflines").unwrap();
        let ledger = JournalLedger::open(&path, 1.0).unwrap();
        assert_eq!(BudgetLedger::spent(&ledger, 0), 0.0);
        drop(ledger);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(HEADER_TAG), "rewritten with a fresh header");
    }

    #[test]
    fn in_memory_accountant_implements_the_ledger_trait() {
        let mut ledger: Box<dyn BudgetLedger> = Box::new(BudgetAccountant::new(1.0));
        ledger.try_charge(0, 1.0).unwrap();
        assert!(ledger.try_charge(0, 0.5).is_err());
        ledger.sync().unwrap();
        assert_eq!(ledger.description(), "memory");
        ledger.reset().unwrap();
        assert_eq!(ledger.remaining(0), 1.0);
    }
}
