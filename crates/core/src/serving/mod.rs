//! Batch recommendation serving: many `(target, k)` requests against one
//! shared graph, under per-target privacy budgets, across graph epochs —
//! structured so the service can run as an always-on daemon.
//!
//! The single-query [`crate::Recommender`] answers one ε-private
//! recommendation per call and recomputes the target's candidate set and
//! utility vector every time. Real workloads (Appendix A's "multiple
//! recommendations"; the measurement setting of Laro et al. 2023) look
//! different: bursts of requests, several slots per target, a *cumulative*
//! privacy budget that must eventually say no — and a social graph that
//! keeps mutating underneath, while the service keeps answering. The
//! [`RecommendationService`] packages that deployment shape in three
//! layers:
//!
//! * **[`epoch`] — RCU-style epoch-pinned reads.** All read state (the
//!   [`psr_graph::DeltaGraph`] view, the calibrated Δf, the per-target
//!   candidate/utility cache) is frozen into an immutable per-epoch
//!   snapshot behind an atomic swap point. Readers
//!   [`pin`](RecommendationService::pin) an epoch and are from then on
//!   untouched by writers: [`RecommendationService::apply_mutations`]
//!   takes `&self`, stages the next epoch on a copy, and swaps the
//!   pointer — in-flight batches drain on the epoch they pinned with
//!   bit-identical results, and mutation batches never stall the read
//!   path. Writers serialise on a staging lock; readers never block.
//! * **[`ledger`] — a persistent budget ledger.** Budget admission runs
//!   through the [`BudgetLedger`] trait; [`JournalLedger`] is the
//!   append-only on-disk implementation whose replay makes per-target ε
//!   spend survive restarts — spend is the one piece of state that must
//!   never reset. Charges are fsynced once per admitted batch *before*
//!   any result is released.
//! * **[`daemon`] — the ingestion loop.** [`daemon::run_daemon`]
//!   multiplexes timestamped request and mutation streams
//!   (`psr_gen::stream`) through the worker pool with a bounded queue
//!   and backpressure, recording per-epoch latency histograms,
//!   throughput, queue depth and budget-rejection counts. The one-shot
//!   `psr serve` path is the same loop run without pacing, drained to
//!   completion.
//!
//! Serving semantics within one epoch are unchanged from the original
//! batch server: worker-pool evaluation with per-request RNG streams
//! (bit-identical across thread counts), per-target candidate/utility
//! caching, the configured top-`k` engine ([`psr_privacy::topk`]) at
//! ε/k per slot, and admission-time budget enforcement with typed
//! refusals. Mutation batches are atomic all-or-nothing, invalidate
//! exactly the targets within the utility's invalidation radius of a
//! mutated endpoint, and fold the overlay into a fresh CSR base when it
//! covers more than a quarter of the nodes.
//!
//! # ε budgets across epochs
//!
//! Budgets are **per target, across graph versions and process
//! restarts**: mutating the graph neither refunds nor resets anyone's
//! spend, and with a [`JournalLedger`] neither does killing the daemon.
//! This matches the paper's per-node guarantee — differential privacy
//! composes over *queries about a node*, and each applied mutation moves
//! the graph to an edge-adjacent neighbour in the sense of Definition 1,
//! not to a fresh database. A deployment that wants periodic budget
//! refresh keeps the explicit [`RecommendationService::reset_budgets`]
//! epoch-rollover call.

mod budget;
pub mod daemon;
mod epoch;
pub mod journal;
mod ledger;

pub use budget::{BudgetAccountant, BudgetExceeded};
pub use epoch::EpochPin;
pub use ledger::{BudgetLedger, JournalLedger};

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex, RwLock};

use epoch::EpochState;
use psr_graph::{
    DeltaGraph, EdgeMutation, Graph, GraphBackend, GraphError, GraphView, MutationOp, NodeId,
};
use psr_obs::{fields, Counter, SpanGuard, Telemetry};
use psr_privacy::TopKEngine;
use psr_utility::{SensitivityNorm, UtilityFunction};
use serde::{Deserialize, Serialize};

/// One entry of a serving batch: `k` recommendation slots for `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The node asking for recommendations.
    pub target: NodeId,
    /// How many distinct recommendations to produce.
    pub k: usize,
}

/// Configuration of a [`RecommendationService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Privacy cost ε of one request (split ε/k across its `k` slots).
    pub epsilon_per_request: f64,
    /// Total ε each target may consume over the service's lifetime
    /// (`f64::INFINITY` disables enforcement).
    pub budget_per_target: f64,
    /// Which norm reading of footnote 5's `Δf` calibrates the mechanism.
    pub sensitivity_norm: SensitivityNorm,
    /// Override for `Δf` when the utility reports no analytic bound.
    pub sensitivity_override: Option<f64>,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
    /// Which top-`k` sampler serves the slots. Both engines draw from the
    /// same distribution (chi-square-pinned); Gumbel is the O(|C| + k log
    /// k) default, Peel the k-round reference engine.
    pub engine: TopKEngine,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            epsilon_per_request: 1.0,
            // Ten unit-ε requests per target before refusal: a concrete
            // stance on the cumulative budget Appendix A leaves open.
            budget_per_target: 10.0,
            sensitivity_norm: SensitivityNorm::LInf,
            sensitivity_override: None,
            threads: None,
            engine: TopKEngine::default(),
        }
    }
}

/// A successfully served request.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The target the recommendations are for.
    pub target: NodeId,
    /// The `k` that was requested (the answer may be shorter when the
    /// candidate set is smaller).
    pub requested_k: usize,
    /// Distinct recommended nodes, in slot order.
    pub recommendations: Vec<NodeId>,
    /// How many slots fell into the zero-utility class (resolved to
    /// concrete uniform members of the class).
    pub zero_class_picks: usize,
    /// Sum of the true utilities of the recommended slots.
    pub total_utility: f64,
    /// ε charged against the target's budget for this request.
    pub epsilon_spent: f64,
}

/// Why a request of a batch was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The target's cumulative ε budget cannot cover this request. The
    /// request was *not* charged.
    BudgetExhausted {
        /// The refused target.
        target: NodeId,
        /// ε the request needed.
        requested: f64,
        /// ε still available for the target.
        remaining: f64,
    },
    /// The target id is not a node of the served graph (not charged).
    UnknownTarget {
        /// The refused target.
        target: NodeId,
        /// Number of nodes in the served graph.
        num_nodes: usize,
    },
    /// `k` was zero (not charged).
    InvalidK {
        /// The refused target.
        target: NodeId,
    },
    /// The target is connected to every other node, so no candidate
    /// exists. The request *was* charged: deciding there is nothing to
    /// recommend still queries the graph.
    NoCandidates {
        /// The refused target.
        target: NodeId,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BudgetExhausted { target, requested, remaining } => write!(
                f,
                "target {target}: privacy budget exhausted \
                 (requested ε = {requested}, remaining ε = {remaining})"
            ),
            ServeError::UnknownTarget { target, num_nodes } => {
                write!(f, "target {target}: not a node of this graph ({num_nodes} nodes)")
            }
            ServeError::InvalidK { target } => {
                write!(f, "target {target}: k must be at least 1")
            }
            ServeError::NoCandidates { target } => {
                write!(f, "target {target}: no candidates (fully connected target)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Why a mutation batch was refused. The batch is atomic: on error the
/// service's graph, epoch, caches and budgets are exactly as before the
/// call.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationError {
    /// A mutation in the batch could not be applied.
    Rejected {
        /// Position of the offending mutation within the batch.
        index: usize,
        /// The offending mutation.
        mutation: EdgeMutation,
        /// What the graph layer objected to (duplicate insert, missing
        /// delete, self-loop, unknown endpoint).
        source: GraphError,
    },
}

impl std::fmt::Display for MutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutationError::Rejected { index, mutation, source } => {
                write!(f, "mutation #{index} {mutation} rejected: {source}")
            }
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MutationError::Rejected { source, .. } => Some(source),
        }
    }
}

/// Summary of one applied mutation batch: what changed and what it
/// invalidated. Returned by [`RecommendationService::apply_mutations`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epoch {
    /// The graph version after this batch (the service starts at 0 and
    /// each successful batch increments it).
    pub version: u64,
    /// Edge insertions in the batch.
    pub insertions: usize,
    /// Edge deletions in the batch.
    pub deletions: usize,
    /// Targets whose utility state may differ in the new epoch: every
    /// node within the utility's invalidation radius of a mutated
    /// endpoint (pre- or post-mutation), sorted ascending. All nodes when
    /// the radius is unbounded or the graph is directed.
    pub dirty_targets: Vec<NodeId>,
    /// Cached target states actually dropped (≤ `dirty_targets.len()`).
    pub invalidated: usize,
    /// Whether the overlay was folded back into a fresh CSR base after
    /// this batch (reads are unaffected; `shared_graph` identity changes).
    pub compacted: bool,
}

/// Fraction of nodes the overlay may dirty before the service re-bases
/// onto a compacted CSR (¼ keeps overlay map probes rare on hot paths).
const COMPACT_DIRTY_FRACTION: f64 = 0.25;

/// The service's telemetry bundle: the shared [`Telemetry`] handle plus
/// counters pre-minted at attach time so the serving hot path never
/// touches the registry's name table. All handles are inert (one `None`
/// branch) when the bundle was built from a disabled [`Telemetry`].
struct ServingTelemetry {
    telemetry: Arc<Telemetry>,
    admitted: Counter,
    rejected_budget: Counter,
    rejected_other: Counter,
    batches: Counter,
}

impl ServingTelemetry {
    fn attach(telemetry: Arc<Telemetry>) -> Self {
        let metrics = telemetry.metrics();
        ServingTelemetry {
            admitted: metrics.counter("serve.admitted"),
            rejected_budget: metrics.counter("serve.rejected_budget"),
            rejected_other: metrics.counter("serve.rejected_other"),
            batches: metrics.counter("serve.batches"),
            telemetry,
        }
    }

    fn disabled() -> Self {
        ServingTelemetry::attach(Telemetry::disabled())
    }

    /// Opens the per-batch serve span (inert guard, no clock read, when
    /// tracing is off — the field vector is only built when live).
    fn serve_span(&self, epoch: u64, requests: usize) -> SpanGuard<'_> {
        let trace = self.telemetry.trace();
        let fields = if trace.is_enabled() {
            fields!["epoch" => epoch, "requests" => requests]
        } else {
            Vec::new()
        };
        trace.span("serve.batch", fields)
    }

    /// Folds one batch's admission outcomes into the admission counters.
    fn record_admissions(&self, admissions: &[Option<ServeError>]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.batches.inc();
        for admission in admissions {
            match admission {
                None => self.admitted.inc(),
                Some(ServeError::BudgetExhausted { .. }) => self.rejected_budget.inc(),
                Some(_) => self.rejected_other.inc(),
            }
        }
    }
}

/// A batch recommendation server over a shared, mutable graph. See the
/// [module docs](self) for the architecture and the epoch model.
pub struct RecommendationService {
    /// The RCU swap point: the current epoch. Readers take the read lock
    /// only long enough to clone the `Arc`; writers swap a fully-staged
    /// next epoch in. Nobody holds it across actual work.
    current: RwLock<Arc<EpochState>>,
    /// Serialises writers (`apply_mutations` / `compact`) so two staged
    /// epochs can never race each other past the swap point.
    staging: Mutex<()>,
    utility: Arc<dyn UtilityFunction>,
    config: ServiceConfig,
    ledger: Mutex<Box<dyn BudgetLedger>>,
    /// Telemetry observes, never participates: outcomes are bit-identical
    /// whether this bundle is live or the default disabled one.
    telemetry: ServingTelemetry,
}

impl RecommendationService {
    /// Assembles a service at epoch 0 with a volatile in-memory budget
    /// ledger. Accepts an owned [`Graph`] or an [`Arc<Graph>`] already
    /// shared with other consumers.
    ///
    /// # Panics
    /// Panics if ε or the budget is not positive, or if the utility
    /// function reports no sensitivity and none is overridden.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        utility: Box<dyn UtilityFunction>,
        config: ServiceConfig,
    ) -> Self {
        Self::with_backend(GraphBackend::Csr(graph.into()), utility, config)
    }

    /// Assembles a service at epoch 0 over any [`GraphBackend`] — in-RAM
    /// CSR, compressed (possibly mmap-backed) snapshot, or sharded
    /// segments — with a volatile in-memory budget ledger. The serving
    /// pipeline reads the base purely through [`psr_graph::GraphView`], so
    /// outcomes are bit-identical across backings (the `graph_backend`
    /// conformance suite asserts this).
    ///
    /// # Panics
    /// Same contract as [`RecommendationService::new`].
    pub fn with_backend(
        backend: GraphBackend,
        utility: Box<dyn UtilityFunction>,
        config: ServiceConfig,
    ) -> Self {
        let ledger = Box::new(BudgetAccountant::new(config.budget_per_target));
        Self::with_backend_and_ledger(backend, utility, config, ledger)
    }

    /// Assembles a service at epoch 0 over an explicit budget ledger —
    /// typically a [`JournalLedger`] carrying spend replayed from a
    /// previous run.
    ///
    /// # Panics
    /// Panics if ε is not positive, if the utility reports no sensitivity
    /// and none is overridden, or if the ledger's budget disagrees with
    /// the configured one (a ledger replayed against a different budget
    /// would mis-account every target).
    pub fn with_ledger(
        graph: impl Into<Arc<Graph>>,
        utility: Box<dyn UtilityFunction>,
        config: ServiceConfig,
        ledger: Box<dyn BudgetLedger>,
    ) -> Self {
        Self::with_backend_and_ledger(GraphBackend::Csr(graph.into()), utility, config, ledger)
    }

    /// [`RecommendationService::with_backend`] over an explicit budget
    /// ledger (see [`RecommendationService::with_ledger`]).
    ///
    /// # Panics
    /// Same contract as [`RecommendationService::with_ledger`].
    pub fn with_backend_and_ledger(
        backend: GraphBackend,
        utility: Box<dyn UtilityFunction>,
        config: ServiceConfig,
        ledger: Box<dyn BudgetLedger>,
    ) -> Self {
        assert!(config.epsilon_per_request > 0.0, "epsilon must be positive");
        assert!(
            ledger.budget_per_target() == config.budget_per_target,
            "ledger budget {} disagrees with configured budget {}",
            ledger.budget_per_target(),
            config.budget_per_target,
        );
        let graph = DeltaGraph::with_backend(backend);
        let utility: Arc<dyn UtilityFunction> = Arc::from(utility);
        let sensitivity = calibrate(&config, utility.as_ref(), &graph);
        let state = EpochState::new(
            0,
            graph,
            sensitivity,
            Arc::clone(&utility),
            config,
            std::collections::HashMap::new(),
        );
        RecommendationService {
            current: RwLock::new(Arc::new(state)),
            staging: Mutex::new(()),
            utility,
            config,
            ledger: Mutex::new(ledger),
            telemetry: ServingTelemetry::disabled(),
        }
    }

    /// Attaches a telemetry bundle: serve spans, admission counters and
    /// epoch events flow into its trace ring and metrics registry, and
    /// the budget ledger is instrumented (fsync latency histogram).
    /// Telemetry is observational only — serving outcomes are
    /// bit-identical with a live bundle and with the default disabled one
    /// (the `telemetry` conformance suite asserts this).
    pub fn set_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.ledger.get_mut().expect("ledger lock").instrument(telemetry.metrics());
        self.telemetry = ServingTelemetry::attach(telemetry);
    }

    /// The attached telemetry bundle (the always-on disabled bundle
    /// unless [`RecommendationService::set_telemetry`] was called).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry.telemetry
    }

    /// Exports point-in-time gauges into the attached metrics registry:
    /// per-target ε spend from the budget ledger and decode-cache
    /// statistics when the epoch's base is a compressed backend. Call
    /// right before snapshotting the registry (`--metrics-out`); a no-op
    /// when telemetry is disabled.
    pub fn export_gauges(&self) {
        let metrics = self.telemetry.telemetry.metrics();
        if !metrics.is_enabled() {
            return;
        }
        self.ledger.lock().expect("ledger lock").export_spend_gauges(metrics);
        // Gauges, not counters: the backend's own atomics are the source
        // of truth, so exporting twice must overwrite, not double-count.
        if let Some(stats) = self.pin().state.graph.base().cache_stats() {
            metrics.gauge("graph.decode_cache.hits").set(stats.hits as f64);
            metrics.gauge("graph.decode_cache.misses").set(stats.misses as f64);
            metrics.gauge("graph.decode_cache.nodes").set(stats.cached_nodes as f64);
            metrics.gauge("graph.decode_cache.bytes").set(stats.cached_bytes as f64);
        }
    }

    /// Pins the current epoch: an O(1) `Arc` clone of the swap point.
    /// Everything the pin exposes (graph view, Δf, cache) stays frozen
    /// and valid while later epochs are staged and swapped in.
    pub fn pin(&self) -> EpochPin {
        EpochPin { state: Arc::clone(&self.current.read().expect("epoch swap point")) }
    }

    /// A shared handle to the current epoch's CSR base, for wiring
    /// [`crate::Recommender`]s or further services to the same instance.
    /// Pending overlay mutations (if any) are *not* visible through it;
    /// [`RecommendationService::snapshot`] materialises them.
    ///
    /// For the CSR backend this is a cheap `Arc` clone sharing the exact
    /// snapshot. Other backends (compressed, sharded) are materialised
    /// into a fresh in-RAM CSR on each call — an O(arcs) decode — so
    /// wire-once-and-share is the intended pattern there.
    pub fn shared_graph(&self) -> Arc<Graph> {
        self.pin().state.graph.base().to_graph_arc()
    }

    /// Short name of the current epoch's base backing (`"csr"`,
    /// `"compressed"`, `"sharded"`), for reports and logs. Compaction
    /// re-bases onto an in-RAM CSR, so a service started on the compressed
    /// backend reports `"csr"` after its first compaction.
    pub fn backend_kind(&self) -> &'static str {
        self.pin().state.graph.base().kind()
    }

    /// The current read view, pinned: base CSR plus pending overlay
    /// mutations as of the current epoch.
    pub fn view(&self) -> EpochPin {
        self.pin()
    }

    /// A fresh CSR snapshot of the current edge set (compacts the
    /// overlay; the service itself is unchanged).
    pub fn snapshot(&self) -> Graph {
        self.pin().state.graph.compact()
    }

    /// The current graph version: 0 at construction, +1 per applied
    /// mutation batch.
    pub fn epoch(&self) -> u64 {
        self.pin().version()
    }

    /// The calibrated sensitivity `Δf` for the current epoch.
    pub fn sensitivity(&self) -> f64 {
        self.pin().sensitivity()
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// ε still available for `target`.
    pub fn remaining_budget(&self, target: NodeId) -> f64 {
        self.ledger.lock().expect("ledger lock").remaining(target)
    }

    /// Cumulative ε spent on `target` (admitted charges, synced or not).
    pub fn spent_budget(&self, target: NodeId) -> f64 {
        self.ledger.lock().expect("ledger lock").spent(target)
    }

    /// The backing budget ledger, for reports (`"memory"` or
    /// `"journal:<path>"`).
    pub fn ledger_description(&self) -> String {
        self.ledger.lock().expect("ledger lock").description()
    }

    /// Durably forgets all budget spend (privacy epoch rollover). Note
    /// that *graph* epochs ([`RecommendationService::apply_mutations`])
    /// never do this implicitly — see the module docs.
    ///
    /// # Panics
    /// Panics if a persistent ledger fails to record the rollover: a
    /// reset that is forgotten on restart would resurrect pre-rollover
    /// spend on top of post-rollover charges.
    pub fn reset_budgets(&self) {
        self.ledger.lock().expect("ledger lock").reset().expect("budget ledger reset");
    }

    /// Applies a batch of edge mutations atomically and starts a new
    /// epoch. On success, cached candidate/utility state is invalidated
    /// for exactly the returned [`Epoch::dirty_targets`]; budgets carry
    /// over untouched. On error nothing changes — not the graph, not the
    /// epoch, not the caches. An empty batch is a no-op: same epoch, no
    /// invalidation.
    ///
    /// Takes `&self`: the next epoch is staged on a copy and swapped in
    /// atomically, so concurrent readers keep draining on their pinned
    /// epoch throughout (writers serialise among themselves on the
    /// staging lock).
    pub fn apply_mutations(&self, mutations: &[EdgeMutation]) -> Result<Epoch, MutationError> {
        let _writer = self.staging.lock().expect("staging lock");
        let old = self.pin().state;
        if mutations.is_empty() {
            return Ok(Epoch {
                version: old.version,
                insertions: 0,
                deletions: 0,
                dirty_targets: Vec::new(),
                invalidated: 0,
                compacted: false,
            });
        }
        // Stage on a copy: a mid-batch rejection leaves nothing behind,
        // and pinned readers never see a half-applied overlay.
        let mut staged = old.graph.clone();
        staged.apply_all(mutations).map_err(|(index, source)| MutationError::Rejected {
            index,
            mutation: mutations[index],
            source,
        })?;

        let num_nodes = staged.num_nodes();
        let dirty_targets: Vec<NodeId> = match self.utility.invalidation_radius() {
            // The radius bound is argued over undirected neighbourhoods;
            // bounding *in*-reachability on directed graphs would need a
            // reverse index the overlay does not keep, so directed graphs
            // conservatively dirty everyone.
            Some(radius) if !staged.is_directed() => {
                let seeds: BTreeSet<NodeId> = mutations.iter().flat_map(|m| [m.u, m.v]).collect();
                let mut marked = vec![false; num_nodes];
                // The ball must cover both neighbourhoods: a deleted
                // edge's influence is visible from the pre-mutation
                // adjacency, an inserted edge's from the post-mutation
                // one.
                mark_ball(&old.graph, &seeds, radius, &mut marked);
                mark_ball(&staged, &seeds, radius, &mut marked);
                marked.iter().enumerate().filter(|&(_, &m)| m).map(|(v, _)| v as NodeId).collect()
            }
            _ => (0..num_nodes as NodeId).collect(),
        };

        // The next epoch inherits every clean target's cached state; the
        // old epoch keeps its full cache for readers still pinned to it.
        let all_dirty = dirty_targets.len() == num_nodes;
        let (cache, invalidated) = old.cache_without(&dirty_targets, all_dirty);

        // Re-calibrate Δf (it may depend on the maximum degree, which the
        // batch can change) and fold the overlay when it got heavy.
        let sensitivity = calibrate(&self.config, self.utility.as_ref(), &staged);
        let compacted = staged.num_dirty() as f64 > COMPACT_DIRTY_FRACTION * num_nodes as f64;
        if compacted {
            staged = DeltaGraph::new(staged.compact());
        }

        let next = EpochState::new(
            old.version + 1,
            staged,
            sensitivity,
            Arc::clone(&self.utility),
            self.config,
            cache,
        );
        *self.current.write().expect("epoch swap point") = Arc::new(next);

        let epoch = Epoch {
            version: old.version + 1,
            insertions: mutations.iter().filter(|m| m.op == MutationOp::Insert).count(),
            deletions: mutations.iter().filter(|m| m.op == MutationOp::Delete).count(),
            dirty_targets,
            invalidated,
            compacted,
        };
        epoch::trace_epoch_apply(&self.telemetry.telemetry, &epoch);
        Ok(epoch)
    }

    /// Folds any pending overlay mutations into a fresh CSR base now,
    /// regardless of overlay size. Reads, caches, budgets and the epoch
    /// version are unaffected (the edge set does not change); returns
    /// whether there was anything to fold.
    pub fn compact(&self) -> bool {
        let _writer = self.staging.lock().expect("staging lock");
        let old = self.pin().state;
        if old.graph.is_clean() {
            return false;
        }
        let next = EpochState::new(
            old.version,
            DeltaGraph::new(old.graph.compact()),
            old.sensitivity,
            Arc::clone(&self.utility),
            self.config,
            old.cache_clone(),
        );
        *self.current.write().expect("epoch swap point") = Arc::new(next);
        true
    }

    /// Serves a whole batch against the *current* epoch. Outcomes are
    /// returned in request order and are bit-identical for a given
    /// `(requests, seed)` and mutation history, regardless of the
    /// configured thread count and of how warm the per-target cache is.
    ///
    /// Budget admission runs sequentially in request order *before* any
    /// evaluation (so "which request hit the budget wall" never depends
    /// on scheduling), and the ledger is synced before any evaluation
    /// begins; admitted requests are then evaluated on the worker pool,
    /// each with an RNG stream split from `seed` and its request index.
    pub fn serve_batch(
        &self,
        requests: &[BatchRequest],
        seed: u64,
    ) -> Vec<Result<Served, ServeError>> {
        self.serve_batch_pinned(&self.pin(), requests, seed)
    }

    /// [`RecommendationService::serve_batch`] against an explicit pinned
    /// epoch. Admission still charges the live ledger (budgets are global
    /// across epochs by design); evaluation reads only the pin, so a
    /// batch pinned to epoch N completes identically even while later
    /// epochs are staged and swapped in.
    pub fn serve_batch_pinned(
        &self,
        pin: &EpochPin,
        requests: &[BatchRequest],
        seed: u64,
    ) -> Vec<Result<Served, ServeError>> {
        let _span = self.telemetry.serve_span(pin.version(), requests.len());

        // Phase 1 — validation + budget admission + durability point
        // (admission counters fold in inside `admit_batch`).
        let admissions = self.admit_batch(pin, requests);
        let mut outcomes: Vec<Option<Result<Served, ServeError>>> =
            admissions.into_iter().map(|r| r.map(Err)).collect();

        // Phase 2 — evaluation of admitted requests on the worker pool.
        let admitted: Vec<usize> = (0..requests.len()).filter(|&i| outcomes[i].is_none()).collect();
        let mut served: Vec<Option<Result<Served, ServeError>>> = vec![None; admitted.len()];
        let threads = self
            .config
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
            .max(1);
        let chunk_size = admitted.len().div_ceil(threads).max(1);
        let state = &pin.state;
        std::thread::scope(|scope| {
            for (chunk, out) in admitted.chunks(chunk_size).zip(served.chunks_mut(chunk_size)) {
                scope.spawn(move || {
                    for (slot, &index) in out.iter_mut().zip(chunk) {
                        *slot = Some(state.evaluate(&requests[index], index, seed));
                    }
                });
            }
        });

        for (&index, outcome) in admitted.iter().zip(served) {
            outcomes[index] = outcome;
        }
        outcomes.into_iter().map(|o| o.expect("every request evaluated")).collect()
    }

    /// Serves a single request (a one-element batch: same budget charge,
    /// same RNG stream derivation at index 0).
    pub fn serve_one(&self, target: NodeId, k: usize, seed: u64) -> Result<Served, ServeError> {
        self.serve_batch(&[BatchRequest { target, k }], seed)
            .pop()
            .expect("one request, one outcome")
    }

    /// Validates and budget-admits a batch against `pin`, in request
    /// order under the ledger lock, then syncs the ledger so every
    /// admitted charge is durable before any result can be released.
    /// `None` per slot means admitted.
    ///
    /// # Panics
    /// Panics if the ledger sync fails: a service that cannot persist its
    /// charges must stop answering, not serve on credit.
    pub(crate) fn admit_batch(
        &self,
        pin: &EpochPin,
        requests: &[BatchRequest],
    ) -> Vec<Option<ServeError>> {
        let mut ledger = self.ledger.lock().expect("ledger lock");
        let admissions: Vec<Option<ServeError>> =
            requests.iter().map(|r| admit(ledger.as_mut(), &pin.state, r)).collect();
        ledger.sync().expect("budget ledger sync failed; refusing to release results");
        drop(ledger);
        // Admission counters live here — the single admission point shared
        // by the one-shot serve path and the daemon's ingestion loop.
        self.telemetry.record_admissions(&admissions);
        admissions
    }
}

/// Validates a request and charges its budget; `None` means admitted.
fn admit(
    ledger: &mut dyn BudgetLedger,
    state: &EpochState,
    request: &BatchRequest,
) -> Option<ServeError> {
    let num_nodes = state.graph.num_nodes();
    if (request.target as usize) >= num_nodes {
        return Some(ServeError::UnknownTarget { target: request.target, num_nodes });
    }
    if request.k == 0 {
        return Some(ServeError::InvalidK { target: request.target });
    }
    match ledger.try_charge(request.target, state.config.epsilon_per_request) {
        Ok(()) => None,
        Err(BudgetExceeded { target, requested, remaining }) => {
            Some(ServeError::BudgetExhausted { target, requested, remaining })
        }
    }
}

/// Δf for the current graph under the configured norm/override.
fn calibrate(config: &ServiceConfig, utility: &dyn UtilityFunction, view: &DeltaGraph) -> f64 {
    config
        .sensitivity_override
        .or_else(|| utility.sensitivity(view).map(|s| s.value(config.sensitivity_norm)))
        .expect("utility reports no sensitivity and no override was given")
}

/// Marks every node within `radius` hops of any seed (seeds included) in
/// `view`. Multi-source truncated BFS; `marked` accumulates across calls.
fn mark_ball(view: &DeltaGraph, seeds: &BTreeSet<NodeId>, radius: usize, marked: &mut [bool]) {
    let mut dist: Vec<u32> = vec![u32::MAX; view.num_nodes()];
    let mut queue = VecDeque::new();
    for &s in seeds {
        dist[s as usize] = 0;
        marked[s as usize] = true;
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        if d as usize >= radius {
            continue;
        }
        for &w in view.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                marked[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_datasets::toy::karate_club;
    use psr_utility::{CandidateSet, CommonNeighbors};

    fn service(config: ServiceConfig) -> RecommendationService {
        RecommendationService::new(karate_club(), Box::new(CommonNeighbors), config)
    }

    fn requests(k: usize) -> Vec<BatchRequest> {
        (0..34u32).map(|target| BatchRequest { target, k }).collect()
    }

    #[test]
    fn batch_serves_valid_distinct_recommendations() {
        let svc = service(ServiceConfig::default());
        for outcome in svc.serve_batch(&requests(3), 7) {
            let served = outcome.unwrap();
            assert_eq!(served.recommendations.len(), 3);
            let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
            assert_eq!(set.len(), 3, "slots must be distinct");
            for &v in &served.recommendations {
                assert_ne!(v, served.target);
                assert!(!svc.view().has_edge(served.target, v), "recommended an existing edge");
            }
            assert_eq!(served.epsilon_spent, 1.0);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let mut batch = requests(2);
        batch.extend(requests(1)); // duplicate targets in one batch
        let one = service(ServiceConfig { threads: Some(1), ..Default::default() });
        let eight = service(ServiceConfig { threads: Some(8), ..Default::default() });
        assert_eq!(one.serve_batch(&batch, 99), eight.serve_batch(&batch, 99));
    }

    #[test]
    fn cache_reuse_does_not_change_results() {
        // A warm cache (second serve of the same batch) must be
        // bit-identical to a cold fresh service.
        let warm =
            service(ServiceConfig { budget_per_target: f64::INFINITY, ..Default::default() });
        let _ = warm.serve_batch(&requests(2), 5);
        let again = warm.serve_batch(&requests(2), 5);
        let cold =
            service(ServiceConfig { budget_per_target: f64::INFINITY, ..Default::default() });
        assert_eq!(again, cold.serve_batch(&requests(2), 5));
    }

    #[test]
    fn budget_refuses_after_exhaustion_with_typed_error() {
        let svc = service(ServiceConfig {
            epsilon_per_request: 1.0,
            budget_per_target: 2.0,
            ..Default::default()
        });
        let batch = vec![BatchRequest { target: 0, k: 1 }; 3];
        let outcomes = svc.serve_batch(&batch, 1);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_ok());
        match &outcomes[2] {
            Err(ServeError::BudgetExhausted { target: 0, requested, remaining }) => {
                assert_eq!(*requested, 1.0);
                assert!(*remaining < 1e-9);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(svc.remaining_budget(0), 0.0);
        assert_eq!(svc.remaining_budget(1), 2.0, "other targets untouched");

        svc.reset_budgets();
        assert!(svc.serve_one(0, 1, 2).is_ok());
    }

    #[test]
    fn unknown_target_and_zero_k_cost_nothing() {
        let svc = service(ServiceConfig::default());
        let outcomes = svc.serve_batch(
            &[BatchRequest { target: 999, k: 1 }, BatchRequest { target: 3, k: 0 }],
            5,
        );
        assert!(matches!(
            outcomes[0],
            Err(ServeError::UnknownTarget { target: 999, num_nodes: 34 })
        ));
        assert!(matches!(outcomes[1], Err(ServeError::InvalidK { target: 3 })));
        assert_eq!(svc.remaining_budget(999), 10.0);
        assert_eq!(svc.remaining_budget(3), 10.0);
    }

    #[test]
    fn oversized_k_is_clamped_to_the_candidate_set() {
        let svc = service(ServiceConfig::default());
        let served = svc.serve_one(0, 10_000, 3).unwrap();
        let candidates = CandidateSet::for_target(&svc.view(), 0);
        assert_eq!(served.requested_k, 10_000);
        assert_eq!(served.recommendations.len(), candidates.len());
        let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(set.len(), served.recommendations.len());
    }

    #[test]
    fn zero_class_slots_resolve_to_distinct_concrete_nodes() {
        // Tiny ε ⇒ many slots land in the zero class; all must come back
        // as distinct real candidates with zero utility.
        let svc = service(ServiceConfig {
            epsilon_per_request: 1e-6,
            budget_per_target: f64::INFINITY,
            ..Default::default()
        });
        let served = svc.serve_one(0, 8, 11).unwrap();
        assert!(served.zero_class_picks > 0, "tiny ε must hit the zero class");
        let candidates = CandidateSet::for_target(&svc.view(), 0);
        let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(set.len(), served.recommendations.len());
        for &v in &served.recommendations {
            assert!(candidates.contains(v));
        }
    }

    #[test]
    fn both_engines_serve_valid_batches_and_identical_budgets() {
        let batch = requests(3);
        for engine in [TopKEngine::Peel, TopKEngine::Gumbel] {
            let svc = service(ServiceConfig { engine, ..Default::default() });
            for outcome in svc.serve_batch(&batch, 7) {
                let served = outcome.unwrap();
                assert_eq!(served.recommendations.len(), 3, "{engine:?}");
                let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
                assert_eq!(set.len(), 3, "{engine:?}: slots must be distinct");
                for &v in &served.recommendations {
                    assert_ne!(v, served.target);
                    assert!(!svc.view().has_edge(served.target, v), "{engine:?}");
                }
                // The ε charge is engine-independent: same budget spend.
                assert_eq!(served.epsilon_spent, 1.0, "{engine:?}");
            }
            assert_eq!(svc.remaining_budget(0), 9.0, "{engine:?}");
        }
    }

    #[test]
    fn engines_agree_when_serving_is_deterministic() {
        // At huge ε both engines serve the exact utility-ordered top-k, so
        // whole batches must match slot for slot.
        let config = |engine| ServiceConfig {
            epsilon_per_request: 1e6,
            budget_per_target: f64::INFINITY,
            engine,
            ..Default::default()
        };
        let peel = service(config(TopKEngine::Peel));
        let gumbel = service(config(TopKEngine::Gumbel));
        for (p, g) in
            peel.serve_batch(&requests(3), 13).iter().zip(gumbel.serve_batch(&requests(3), 13))
        {
            let (p, g) = (p.as_ref().unwrap(), g.as_ref().unwrap());
            assert_eq!(p.total_utility, g.total_utility, "target {}", p.target);
            // Slot order may differ only among tied utilities; the served
            // utility multiset is the deterministic invariant.
            assert_eq!(p.zero_class_picks, g.zero_class_picks);
        }
    }

    #[test]
    fn shares_graph_with_recommenders() {
        let svc = service(ServiceConfig::default());
        let rec = crate::Recommender::new(
            svc.shared_graph(),
            Box::new(CommonNeighbors),
            Box::new(psr_privacy::ExponentialMechanism::paper()),
            crate::RecommenderConfig::default(),
        );
        assert!(std::ptr::eq(svc.shared_graph().as_ref() as *const Graph, rec.graph()));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_eps_rejected() {
        let _ = service(ServiceConfig { epsilon_per_request: 0.0, ..Default::default() });
    }

    #[test]
    #[should_panic(expected = "disagrees with configured budget")]
    fn mismatched_ledger_budget_rejected() {
        let _ = RecommendationService::with_ledger(
            karate_club(),
            Box::new(CommonNeighbors),
            ServiceConfig::default(),
            Box::new(BudgetAccountant::new(3.0)),
        );
    }

    #[test]
    fn mutations_open_a_new_epoch_and_update_reads() {
        let svc = service(ServiceConfig::default());
        assert_eq!(svc.epoch(), 0);
        assert!(svc.view().has_edge(0, 1));
        let epoch =
            svc.apply_mutations(&[EdgeMutation::delete(0, 1), EdgeMutation::insert(0, 9)]).unwrap();
        assert_eq!(epoch.version, 1);
        assert_eq!(svc.epoch(), 1);
        assert_eq!(epoch.insertions, 1);
        assert_eq!(epoch.deletions, 1);
        assert!(!svc.view().has_edge(0, 1));
        assert!(svc.view().has_edge(0, 9));
        // Recommendations in the new epoch respect the new edge set.
        let served = svc.serve_one(0, 3, 7).unwrap();
        for &v in &served.recommendations {
            assert!(!svc.view().has_edge(0, v));
            assert_ne!(v, 0);
        }
    }

    #[test]
    fn pinned_epoch_survives_later_mutations() {
        // The RCU contract in miniature: a pin taken before a mutation
        // batch keeps reading (and serving) the old graph version.
        let svc = service(ServiceConfig { budget_per_target: f64::INFINITY, ..Default::default() });
        let pin = svc.pin();
        let before = svc.serve_batch_pinned(&pin, &requests(2), 21);
        svc.apply_mutations(&[EdgeMutation::delete(0, 1), EdgeMutation::insert(24, 16)]).unwrap();
        assert_eq!(pin.version(), 0);
        assert_eq!(svc.epoch(), 1);
        assert!(pin.has_edge(0, 1), "the pin still reads epoch 0");
        assert!(!svc.view().has_edge(0, 1), "fresh pins read epoch 1");
        let replay = svc.serve_batch_pinned(&pin, &requests(2), 21);
        assert_eq!(before, replay, "pinned serving is bit-identical across the swap");
    }

    #[test]
    fn dirty_targets_cover_the_mutation_ball_only() {
        // Common neighbours has invalidation radius 1: the dirty set is
        // the endpoints plus their neighbours (old and new), not the
        // whole karate club.
        let svc = service(ServiceConfig::default());
        let graph = svc.shared_graph();
        // Warm every target's cache.
        let _ = svc.serve_batch(&requests(1), 3);
        let epoch = svc.apply_mutations(&[EdgeMutation::insert(24, 16)]).unwrap();
        let mut expected: BTreeSet<NodeId> = BTreeSet::from([24, 16]);
        expected.extend(graph.neighbors(24).iter().copied());
        expected.extend(graph.neighbors(16).iter().copied());
        assert_eq!(epoch.dirty_targets, expected.into_iter().collect::<Vec<_>>());
        assert!(epoch.dirty_targets.len() < 34, "must not dirty the whole graph");
        assert_eq!(epoch.invalidated, epoch.dirty_targets.len(), "all were cached");
    }

    #[test]
    fn rejected_batch_changes_nothing() {
        let svc = service(ServiceConfig::default());
        let before = svc.serve_batch(&requests(2), 9);
        svc.reset_budgets();
        let err = svc
            .apply_mutations(&[
                EdgeMutation::insert(0, 9),
                EdgeMutation::insert(0, 1), // duplicate: karate club has 0-1
            ])
            .unwrap_err();
        match &err {
            MutationError::Rejected { index, mutation, source } => {
                assert_eq!(*index, 1);
                assert_eq!(*mutation, EdgeMutation::insert(0, 1));
                assert_eq!(*source, GraphError::EdgeExists { from: 0, to: 1 });
            }
        }
        assert!(err.to_string().contains("mutation #1"));
        assert_eq!(svc.epoch(), 0);
        assert!(!svc.view().has_edge(0, 9), "partial batch must be rolled back");
        svc.reset_budgets();
        assert_eq!(svc.serve_batch(&requests(2), 9), before, "serving state untouched");
    }

    #[test]
    fn empty_mutation_batch_is_a_no_op() {
        let svc = service(ServiceConfig::default());
        let _ = svc.serve_batch(&requests(1), 3); // warm caches
        let epoch = svc.apply_mutations(&[]).unwrap();
        assert_eq!(epoch.version, 0, "no change, no new epoch");
        assert!(epoch.dirty_targets.is_empty());
        assert_eq!(epoch.invalidated, 0, "warm caches must survive");
        assert_eq!(svc.epoch(), 0);
    }

    #[test]
    fn budgets_carry_across_epochs() {
        let svc = service(ServiceConfig {
            epsilon_per_request: 1.0,
            budget_per_target: 2.0,
            ..Default::default()
        });
        assert!(svc.serve_one(0, 1, 1).is_ok());
        assert_eq!(svc.remaining_budget(0), 1.0);
        svc.apply_mutations(&[EdgeMutation::insert(0, 9)]).unwrap();
        assert_eq!(svc.remaining_budget(0), 1.0, "mutations must not refund ε");
        assert!(svc.serve_one(0, 1, 2).is_ok());
        assert!(matches!(
            svc.serve_one(0, 1, 3),
            Err(ServeError::BudgetExhausted { target: 0, .. })
        ));
    }

    #[test]
    fn heavy_mutation_batch_triggers_compaction() {
        let svc = service(ServiceConfig::default());
        let base = svc.shared_graph();
        // Dirty well over a quarter of the 34 nodes: fresh edges between
        // disjoint endpoint pairs.
        let muts: Vec<EdgeMutation> = (0..17u32)
            .map(|i| (2 * i, 2 * i + 1))
            .filter(|&(u, v)| !base.has_edge(u, v))
            .map(|(u, v)| EdgeMutation::insert(u, v))
            .collect();
        assert!(muts.len() >= 10);
        let epoch = svc.apply_mutations(&muts).unwrap();
        assert!(epoch.compacted);
        assert!(svc.view().graph().is_clean(), "overlay folded into the new base");
        assert!(!Arc::ptr_eq(&svc.shared_graph(), &base), "re-based onto a fresh CSR");
        for m in &muts {
            assert!(svc.view().has_edge(m.u, m.v));
        }
    }

    #[test]
    fn explicit_compact_preserves_reads_and_epoch() {
        let svc = service(ServiceConfig::default());
        svc.apply_mutations(&[EdgeMutation::insert(24, 16)]).unwrap();
        let before = svc.snapshot();
        let epoch = svc.epoch();
        assert!(svc.compact());
        assert!(!svc.compact(), "second compact is a no-op");
        assert_eq!(svc.snapshot(), before);
        assert_eq!(svc.epoch(), epoch);
    }
}
