//! Batch recommendation serving: many `(target, k)` requests against one
//! shared graph, under per-target privacy budgets.
//!
//! The single-query [`crate::Recommender`] answers one ε-private
//! recommendation per call and recomputes the target's candidate set and
//! utility vector every time. Real workloads (Appendix A's "multiple
//! recommendations"; the measurement setting of Laro et al. 2023) look
//! different: bursts of requests, several slots per target, and a
//! *cumulative* privacy budget that must eventually say no. The
//! [`RecommendationService`] packages that deployment shape:
//!
//! * **Shared graph** — the service holds its [`Graph`] behind an
//!   [`Arc`], so any number of services, [`crate::Recommender`]s and
//!   experiment harnesses serve from one in-memory instance.
//! * **Worker pool** — a batch is fanned across `threads` workers with
//!   the same per-request RNG-stream splitting the experiment pipeline
//!   uses, so results are bit-identical regardless of thread count or
//!   scheduling.
//! * **Per-target reuse** — each request computes its
//!   [`CandidateSet`]/[`psr_utility::UtilityVector`] once and the top-`k`
//!   peeling engine ([`psr_privacy::topk`]) serves all `k` slots from it,
//!   charging ε/k per slot (basic composition ⇒ ε per request).
//! * **Budget accounting** — an admission-time [`BudgetAccountant`]
//!   refuses requests whose target has exhausted its ε budget, with a
//!   typed [`ServeError::BudgetExhausted`] instead of a silent answer.

mod budget;

pub use budget::{BudgetAccountant, BudgetExceeded};

use std::sync::{Arc, Mutex};

use psr_gen::seed::{rng_from_seed, split_seed};
use psr_graph::{Graph, NodeId};
use psr_privacy::{resolve_zero_class_distinct, topk};
use psr_utility::{CandidateSet, SensitivityNorm, UtilityFunction};
use serde::{Deserialize, Serialize};

/// One entry of a serving batch: `k` recommendation slots for `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The node asking for recommendations.
    pub target: NodeId,
    /// How many distinct recommendations to produce.
    pub k: usize,
}

/// Configuration of a [`RecommendationService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Privacy cost ε of one request (split ε/k across its `k` slots).
    pub epsilon_per_request: f64,
    /// Total ε each target may consume over the service's lifetime
    /// (`f64::INFINITY` disables enforcement).
    pub budget_per_target: f64,
    /// Which norm reading of footnote 5's `Δf` calibrates the mechanism.
    pub sensitivity_norm: SensitivityNorm,
    /// Override for `Δf` when the utility reports no analytic bound.
    pub sensitivity_override: Option<f64>,
    /// Worker threads; `None` = available parallelism.
    pub threads: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            epsilon_per_request: 1.0,
            // Ten unit-ε requests per target before refusal: a concrete
            // stance on the cumulative budget Appendix A leaves open.
            budget_per_target: 10.0,
            sensitivity_norm: SensitivityNorm::LInf,
            sensitivity_override: None,
            threads: None,
        }
    }
}

/// A successfully served request.
#[derive(Debug, Clone, PartialEq)]
pub struct Served {
    /// The target the recommendations are for.
    pub target: NodeId,
    /// The `k` that was requested (the answer may be shorter when the
    /// candidate set is smaller).
    pub requested_k: usize,
    /// Distinct recommended nodes, in slot order.
    pub recommendations: Vec<NodeId>,
    /// How many slots fell into the zero-utility class (resolved to
    /// concrete uniform members of the class).
    pub zero_class_picks: usize,
    /// Sum of the true utilities of the recommended slots.
    pub total_utility: f64,
    /// ε charged against the target's budget for this request.
    pub epsilon_spent: f64,
}

/// Why a request of a batch was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The target's cumulative ε budget cannot cover this request. The
    /// request was *not* charged.
    BudgetExhausted {
        /// The refused target.
        target: NodeId,
        /// ε the request needed.
        requested: f64,
        /// ε still available for the target.
        remaining: f64,
    },
    /// The target id is not a node of the served graph (not charged).
    UnknownTarget {
        /// The refused target.
        target: NodeId,
        /// Number of nodes in the served graph.
        num_nodes: usize,
    },
    /// `k` was zero (not charged).
    InvalidK {
        /// The refused target.
        target: NodeId,
    },
    /// The target is connected to every other node, so no candidate
    /// exists. The request *was* charged: deciding there is nothing to
    /// recommend still queries the graph.
    NoCandidates {
        /// The refused target.
        target: NodeId,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BudgetExhausted { target, requested, remaining } => write!(
                f,
                "target {target}: privacy budget exhausted \
                 (requested ε = {requested}, remaining ε = {remaining})"
            ),
            ServeError::UnknownTarget { target, num_nodes } => {
                write!(f, "target {target}: not a node of this graph ({num_nodes} nodes)")
            }
            ServeError::InvalidK { target } => {
                write!(f, "target {target}: k must be at least 1")
            }
            ServeError::NoCandidates { target } => {
                write!(f, "target {target}: no candidates (fully connected target)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A batch recommendation server over a shared graph. See the
/// [module docs](self) for the architecture.
pub struct RecommendationService {
    graph: Arc<Graph>,
    utility: Arc<dyn UtilityFunction>,
    config: ServiceConfig,
    sensitivity: f64,
    accountant: Mutex<BudgetAccountant>,
}

impl RecommendationService {
    /// Assembles a service. Accepts an owned [`Graph`] or an
    /// [`Arc<Graph>`] already shared with other consumers.
    ///
    /// # Panics
    /// Panics if ε or the budget is not positive, or if the utility
    /// function reports no sensitivity and none is overridden.
    pub fn new(
        graph: impl Into<Arc<Graph>>,
        utility: Box<dyn UtilityFunction>,
        config: ServiceConfig,
    ) -> Self {
        assert!(config.epsilon_per_request > 0.0, "epsilon must be positive");
        let graph = graph.into();
        let utility: Arc<dyn UtilityFunction> = Arc::from(utility);
        let sensitivity = config
            .sensitivity_override
            .or_else(|| utility.sensitivity(&graph).map(|s| s.value(config.sensitivity_norm)))
            .expect("utility reports no sensitivity and no override was given");
        RecommendationService {
            graph,
            utility,
            config,
            sensitivity,
            accountant: Mutex::new(BudgetAccountant::new(config.budget_per_target)),
        }
    }

    /// A shared handle to the served graph, for wiring
    /// [`crate::Recommender`]s or further services to the same instance.
    pub fn shared_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// The served graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The calibrated sensitivity `Δf`.
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// ε still available for `target`.
    pub fn remaining_budget(&self, target: NodeId) -> f64 {
        self.accountant.lock().expect("accountant lock").remaining(target)
    }

    /// Forgets all budget spend (privacy epoch rollover).
    pub fn reset_budgets(&self) {
        self.accountant.lock().expect("accountant lock").reset();
    }

    /// Serves a whole batch. Outcomes are returned in request order and
    /// are bit-identical for a given `(requests, seed)` regardless of the
    /// configured thread count.
    ///
    /// Budget admission runs sequentially in request order *before* any
    /// evaluation (so "which request hit the budget wall" never depends
    /// on scheduling); admitted requests are then evaluated on the worker
    /// pool, each with an RNG stream split from `seed` and its request
    /// index.
    pub fn serve_batch(
        &self,
        requests: &[BatchRequest],
        seed: u64,
    ) -> Vec<Result<Served, ServeError>> {
        // Phase 1 — validation + budget admission, sequential.
        let mut outcomes: Vec<Option<Result<Served, ServeError>>> = Vec::new();
        {
            let mut accountant = self.accountant.lock().expect("accountant lock");
            for request in requests {
                let rejection = self.admit(&mut accountant, request);
                outcomes.push(rejection.map(Err));
            }
        }

        // Phase 2 — evaluation of admitted requests on the worker pool.
        let admitted: Vec<usize> = (0..requests.len()).filter(|&i| outcomes[i].is_none()).collect();
        let mut served: Vec<Option<Result<Served, ServeError>>> = vec![None; admitted.len()];
        let threads = self
            .config
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |p| p.get()))
            .max(1);
        let chunk_size = admitted.len().div_ceil(threads).max(1);
        std::thread::scope(|scope| {
            for (chunk, out) in admitted.chunks(chunk_size).zip(served.chunks_mut(chunk_size)) {
                scope.spawn(move || {
                    for (slot, &index) in out.iter_mut().zip(chunk) {
                        *slot = Some(self.evaluate(&requests[index], index, seed));
                    }
                });
            }
        });

        for (&index, outcome) in admitted.iter().zip(served) {
            outcomes[index] = outcome;
        }
        outcomes.into_iter().map(|o| o.expect("every request evaluated")).collect()
    }

    /// Serves a single request (a one-element batch: same budget charge,
    /// same RNG stream derivation at index 0).
    pub fn serve_one(&self, target: NodeId, k: usize, seed: u64) -> Result<Served, ServeError> {
        self.serve_batch(&[BatchRequest { target, k }], seed)
            .pop()
            .expect("one request, one outcome")
    }

    /// Validates a request and charges its budget; `None` means admitted.
    fn admit(
        &self,
        accountant: &mut BudgetAccountant,
        request: &BatchRequest,
    ) -> Option<ServeError> {
        if (request.target as usize) >= self.graph.num_nodes() {
            return Some(ServeError::UnknownTarget {
                target: request.target,
                num_nodes: self.graph.num_nodes(),
            });
        }
        if request.k == 0 {
            return Some(ServeError::InvalidK { target: request.target });
        }
        match accountant.try_charge(request.target, self.config.epsilon_per_request) {
            Ok(()) => None,
            Err(BudgetExceeded { target, requested, remaining }) => {
                Some(ServeError::BudgetExhausted { target, requested, remaining })
            }
        }
    }

    /// Evaluates one admitted request: candidate set and utility vector
    /// once, then `k` slots peeled from them.
    fn evaluate(
        &self,
        request: &BatchRequest,
        index: usize,
        seed: u64,
    ) -> Result<Served, ServeError> {
        // Per-request stream keyed by batch index: reordering worker
        // threads cannot change any request's result, and duplicate
        // targets within a batch get independent draws.
        let mut rng = rng_from_seed(split_seed(seed, 0xBA_0000 + index as u64));

        let candidates = CandidateSet::for_target(&self.graph, request.target);
        if candidates.is_empty() {
            return Err(ServeError::NoCandidates { target: request.target });
        }
        let u = self.utility.utilities(&self.graph, request.target, &candidates);
        let k = request.k.min(u.len());
        let top = topk::topk_exponential(
            &u,
            k,
            self.config.epsilon_per_request,
            self.sensitivity,
            &mut rng,
        );

        // Resolve anonymous zero-class slots to distinct concrete nodes.
        let zero_slots = top.picks.iter().filter(|p| p.is_none()).count();
        let mut zero_picks =
            resolve_zero_class_distinct(zero_slots, &u, &candidates, &mut rng).into_iter();
        let recommendations: Vec<NodeId> = top
            .picks
            .iter()
            .map(|pick| pick.unwrap_or_else(|| zero_picks.next().expect("class large enough")))
            .collect();

        Ok(Served {
            target: request.target,
            requested_k: request.k,
            recommendations,
            zero_class_picks: zero_slots,
            total_utility: top.total_utility,
            epsilon_spent: self.config.epsilon_per_request,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psr_datasets::toy::karate_club;
    use psr_utility::CommonNeighbors;

    fn service(config: ServiceConfig) -> RecommendationService {
        RecommendationService::new(karate_club(), Box::new(CommonNeighbors), config)
    }

    fn requests(k: usize) -> Vec<BatchRequest> {
        (0..34u32).map(|target| BatchRequest { target, k }).collect()
    }

    #[test]
    fn batch_serves_valid_distinct_recommendations() {
        let svc = service(ServiceConfig::default());
        for outcome in svc.serve_batch(&requests(3), 7) {
            let served = outcome.unwrap();
            assert_eq!(served.recommendations.len(), 3);
            let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
            assert_eq!(set.len(), 3, "slots must be distinct");
            for &v in &served.recommendations {
                assert_ne!(v, served.target);
                assert!(!svc.graph().has_edge(served.target, v), "recommended an existing edge");
            }
            assert_eq!(served.epsilon_spent, 1.0);
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        let mut batch = requests(2);
        batch.extend(requests(1)); // duplicate targets in one batch
        let one = service(ServiceConfig { threads: Some(1), ..Default::default() });
        let eight = service(ServiceConfig { threads: Some(8), ..Default::default() });
        assert_eq!(one.serve_batch(&batch, 99), eight.serve_batch(&batch, 99));
    }

    #[test]
    fn budget_refuses_after_exhaustion_with_typed_error() {
        let svc = service(ServiceConfig {
            epsilon_per_request: 1.0,
            budget_per_target: 2.0,
            ..Default::default()
        });
        let batch = vec![BatchRequest { target: 0, k: 1 }; 3];
        let outcomes = svc.serve_batch(&batch, 1);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_ok());
        match &outcomes[2] {
            Err(ServeError::BudgetExhausted { target: 0, requested, remaining }) => {
                assert_eq!(*requested, 1.0);
                assert!(*remaining < 1e-9);
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert_eq!(svc.remaining_budget(0), 0.0);
        assert_eq!(svc.remaining_budget(1), 2.0, "other targets untouched");

        svc.reset_budgets();
        assert!(svc.serve_one(0, 1, 2).is_ok());
    }

    #[test]
    fn unknown_target_and_zero_k_cost_nothing() {
        let svc = service(ServiceConfig::default());
        let outcomes = svc.serve_batch(
            &[BatchRequest { target: 999, k: 1 }, BatchRequest { target: 3, k: 0 }],
            5,
        );
        assert!(matches!(
            outcomes[0],
            Err(ServeError::UnknownTarget { target: 999, num_nodes: 34 })
        ));
        assert!(matches!(outcomes[1], Err(ServeError::InvalidK { target: 3 })));
        assert_eq!(svc.remaining_budget(999), 10.0);
        assert_eq!(svc.remaining_budget(3), 10.0);
    }

    #[test]
    fn oversized_k_is_clamped_to_the_candidate_set() {
        let svc = service(ServiceConfig::default());
        let served = svc.serve_one(0, 10_000, 3).unwrap();
        let candidates = CandidateSet::for_target(svc.graph(), 0);
        assert_eq!(served.requested_k, 10_000);
        assert_eq!(served.recommendations.len(), candidates.len());
        let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(set.len(), served.recommendations.len());
    }

    #[test]
    fn zero_class_slots_resolve_to_distinct_concrete_nodes() {
        // Tiny ε ⇒ many slots land in the zero class; all must come back
        // as distinct real candidates with zero utility.
        let svc = service(ServiceConfig {
            epsilon_per_request: 1e-6,
            budget_per_target: f64::INFINITY,
            ..Default::default()
        });
        let served = svc.serve_one(0, 8, 11).unwrap();
        assert!(served.zero_class_picks > 0, "tiny ε must hit the zero class");
        let candidates = CandidateSet::for_target(svc.graph(), 0);
        let set: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(set.len(), served.recommendations.len());
        for &v in &served.recommendations {
            assert!(candidates.contains(v));
        }
    }

    #[test]
    fn shares_graph_with_recommenders() {
        let svc = service(ServiceConfig::default());
        let rec = crate::Recommender::new(
            svc.shared_graph(),
            Box::new(CommonNeighbors),
            Box::new(psr_privacy::ExponentialMechanism::paper()),
            crate::RecommenderConfig::default(),
        );
        assert!(std::ptr::eq(svc.graph(), rec.graph()));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_eps_rejected() {
        let _ = service(ServiceConfig { epsilon_per_request: 0.0, ..Default::default() });
    }
}
