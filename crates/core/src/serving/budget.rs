//! Per-target ε-budget accounting for the serving layer.
//!
//! Every answered recommendation request consumes privacy: `k` peeled
//! draws at ε/k each compose to ε per request (basic composition, as in
//! `psr_privacy::topk`), and repeated requests about the same target
//! compose *additively* on top of that. The accountant tracks the
//! cumulative spend per target and refuses requests that would push it
//! past the configured budget — the deployment stance of Appendix A's
//! "multiple recommendations" remark.

use std::collections::HashMap;

use psr_graph::NodeId;

/// Absolute slack when comparing spend against the budget, so a budget
/// that is an exact multiple of the per-request ε admits the full multiple
/// despite accumulated floating-point rounding.
const BUDGET_SLACK: f64 = 1e-9;

/// A rejected charge: serving the request would exceed the target's budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// The target whose budget ran out.
    pub target: NodeId,
    /// The ε the request asked to spend.
    pub requested: f64,
    /// What was still available (never negative).
    pub remaining: f64,
}

/// Tracks cumulative ε spend per target against a fixed per-target budget.
///
/// Charges are *admission-time*: a request consumes its ε the moment the
/// accountant admits it, whether or not the mechanism later produces a
/// useful answer (declining to answer after looking at the graph still
/// spends privacy, so refunds would be unsound).
#[derive(Debug)]
pub struct BudgetAccountant {
    budget_per_target: f64,
    spent: HashMap<NodeId, f64>,
}

impl BudgetAccountant {
    /// Creates an accountant with the given per-target budget.
    ///
    /// # Panics
    /// Panics unless the budget is positive (`f64::INFINITY` disables
    /// enforcement).
    pub fn new(budget_per_target: f64) -> Self {
        assert!(budget_per_target > 0.0, "budget must be positive, got {budget_per_target}");
        BudgetAccountant { budget_per_target, spent: HashMap::new() }
    }

    /// The configured per-target budget.
    pub fn budget_per_target(&self) -> f64 {
        self.budget_per_target
    }

    /// Cumulative ε already spent on `target`.
    pub fn spent(&self, target: NodeId) -> f64 {
        self.spent.get(&target).copied().unwrap_or(0.0)
    }

    /// Budget still available for `target` (never negative).
    pub fn remaining(&self, target: NodeId) -> f64 {
        (self.budget_per_target - self.spent(target)).max(0.0)
    }

    /// Admits and records a charge of `eps` against `target`, or rejects
    /// it without recording anything.
    pub fn try_charge(&mut self, target: NodeId, eps: f64) -> Result<(), BudgetExceeded> {
        assert!(eps > 0.0, "charge must be positive, got {eps}");
        let spent = self.spent.entry(target).or_insert(0.0);
        if *spent + eps > self.budget_per_target + BUDGET_SLACK {
            return Err(BudgetExceeded {
                target,
                requested: eps,
                remaining: (self.budget_per_target - *spent).max(0.0),
            });
        }
        *spent += eps;
        Ok(())
    }

    /// Records `eps` of spend against `target` without an admission
    /// check. This is the journal-replay primitive: a restarted ledger
    /// must reconstruct spend *as charged*, even where floating-point
    /// slack let the original admission land a hair past the nominal
    /// budget — clamping on replay would silently refund privacy.
    pub fn restore(&mut self, target: NodeId, eps: f64) {
        assert!(eps > 0.0, "restored spend must be positive, got {eps}");
        *self.spent.entry(target).or_insert(0.0) += eps;
    }

    /// Forgets all spend, e.g. after a privacy epoch rollover.
    pub fn reset(&mut self) {
        self.spent.clear();
    }

    /// Every target that has spent anything, with its cumulative ε,
    /// sorted by target id — the export surface behind the per-target
    /// ε-spend gauges in `--metrics-out` snapshots.
    pub fn spent_per_target(&self) -> Vec<(NodeId, f64)> {
        let mut spend: Vec<(NodeId, f64)> =
            self.spent.iter().map(|(&target, &eps)| (target, eps)).collect();
        spend.sort_by_key(|&(target, _)| target);
        spend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_until_exhausted() {
        let mut acc = BudgetAccountant::new(1.0);
        assert_eq!(acc.remaining(7), 1.0);
        for _ in 0..10 {
            acc.try_charge(7, 0.1).unwrap();
        }
        // Ten charges of 0.1 must fill a budget of 1.0 exactly despite
        // floating-point accumulation (the slack's whole purpose)…
        let err = acc.try_charge(7, 0.1).unwrap_err();
        assert_eq!(err.target, 7);
        assert_eq!(err.requested, 0.1);
        assert!(err.remaining < 1e-9);
        // …and other targets are unaffected.
        acc.try_charge(8, 1.0).unwrap();
    }

    #[test]
    fn rejected_charges_record_nothing() {
        let mut acc = BudgetAccountant::new(0.5);
        acc.try_charge(1, 0.4).unwrap();
        assert!(acc.try_charge(1, 0.4).is_err());
        assert!((acc.spent(1) - 0.4).abs() < 1e-12, "failed charge must not spend");
        acc.try_charge(1, 0.1).unwrap();
    }

    #[test]
    fn infinite_budget_never_rejects() {
        let mut acc = BudgetAccountant::new(f64::INFINITY);
        for _ in 0..100 {
            acc.try_charge(0, 1e6).unwrap();
        }
        assert_eq!(acc.remaining(0), f64::INFINITY);
    }

    #[test]
    fn reset_restores_full_budget() {
        let mut acc = BudgetAccountant::new(1.0);
        acc.try_charge(3, 1.0).unwrap();
        assert!(acc.try_charge(3, 0.1).is_err());
        acc.reset();
        assert_eq!(acc.remaining(3), 1.0);
        acc.try_charge(3, 1.0).unwrap();
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = BudgetAccountant::new(0.0);
    }

    #[test]
    fn restore_skips_the_admission_check() {
        let mut acc = BudgetAccountant::new(1.0);
        // Replay may carry spend past the nominal budget (slack admitted
        // it originally); restore must take it verbatim.
        acc.restore(4, 0.7);
        acc.restore(4, 0.7);
        assert!((acc.spent(4) - 1.4).abs() < 1e-12);
        assert_eq!(acc.remaining(4), 0.0);
        assert!(acc.try_charge(4, 0.1).is_err(), "restored spend still gates admission");
    }
}
