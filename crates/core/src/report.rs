//! Text rendering of figure data and the §7.2 headline claims.

use crate::cdf::AccuracyCdf;
use crate::figures::{FigureResult, Series};

/// Renders a figure as an aligned text table: one row per accuracy grid
/// point, one column per series — the same rows/series the paper plots.
pub fn render_figure(figure: &FigureResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {} ==\n{}\n", figure.id, figure.caption));
    out.push_str(&format!("{:>10}", figure.x_label));
    for s in &figure.series {
        out.push_str(&format!("  {:>26}", s.label));
    }
    out.push('\n');
    let grid_len = figure.series.first().map_or(0, |s| s.points.len());
    for i in 0..grid_len {
        let x = figure.series[0].points[i].0;
        out.push_str(&format!("{x:>10.2}"));
        for s in &figure.series {
            out.push_str(&format!("  {:>25.1}%", s.points[i].1 * 100.0));
        }
        out.push('\n');
    }
    out
}

/// One §7.2-style headline claim derived from a CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineClaim {
    /// Human-readable statement.
    pub statement: String,
    /// Fraction of nodes below the threshold.
    pub fraction: f64,
    /// The accuracy threshold.
    pub threshold: f64,
}

/// Extracts "X% of nodes receive accuracy below Y" claims at the paper's
/// favourite thresholds.
pub fn headline_claims(label: &str, cdf: &AccuracyCdf) -> Vec<HeadlineClaim> {
    [0.01, 0.1, 0.3, 0.5, 0.9]
        .iter()
        .map(|&threshold| {
            let fraction = cdf.fraction_at_most(threshold);
            HeadlineClaim {
                statement: format!(
                    "{label}: {:.0}% of nodes receive accuracy ≤ {threshold}",
                    fraction * 100.0
                ),
                fraction,
                threshold,
            }
        })
        .collect()
}

/// Renders a two-mechanism comparison table (the §7.2 "Laplace performs as
/// well as Exponential" check): per-quantile accuracies and the largest
/// per-target gap.
pub fn render_mechanism_comparison(
    exp: &[f64],
    lap: &[f64],
    per_target_gap: Option<f64>,
) -> String {
    let e = AccuracyCdf::new(exp.to_vec());
    let l = AccuracyCdf::new(lap.to_vec());
    let mut out = String::new();
    out.push_str(&format!("{:>12} {:>14} {:>14}\n", "quantile", "exponential", "laplace"));
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        out.push_str(&format!("{q:>12.2} {:>14.4} {:>14.4}\n", e.quantile(q), l.quantile(q)));
    }
    out.push_str(&format!("{:>12} {:>14.4} {:>14.4}\n", "mean", e.mean(), l.mean()));
    if let Some(gap) = per_target_gap {
        out.push_str(&format!("max per-target |gap|: {gap:.4}\n"));
    }
    out
}

/// Builds a [`Series`] from per-target accuracies on the paper grid.
pub fn cdf_series(label: impl Into<String>, accuracies: Vec<f64>) -> Series {
    let cdf = AccuracyCdf::new(accuracies);
    Series { label: label.into(), points: cdf.paper_series() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure() -> FigureResult {
        FigureResult {
            id: "fig-test".into(),
            caption: "test figure".into(),
            x_label: "accuracy".into(),
            series: vec![
                cdf_series("mech ε=1", vec![0.1, 0.2, 0.9]),
                cdf_series("bound ε=1", vec![0.3, 0.5, 0.95]),
            ],
        }
    }

    #[test]
    fn render_contains_all_rows_and_labels() {
        let text = render_figure(&figure());
        assert!(text.contains("fig-test"));
        assert!(text.contains("mech ε=1"));
        assert!(text.contains("bound ε=1"));
        // 11 grid rows + 2 header lines + caption line.
        assert_eq!(text.lines().count(), 14);
        assert!(text.contains("100.0%"));
    }

    #[test]
    fn headline_claims_track_cdf() {
        let cdf = AccuracyCdf::new(vec![0.05, 0.05, 0.2, 0.8]);
        let claims = headline_claims("wiki ε=0.5", &cdf);
        assert_eq!(claims.len(), 5);
        let at_01 = claims.iter().find(|c| c.threshold == 0.1).unwrap();
        assert_eq!(at_01.fraction, 0.5);
        assert!(at_01.statement.contains("50%"));
    }

    #[test]
    fn comparison_table_renders() {
        let text = render_mechanism_comparison(&[0.5, 0.6, 0.7], &[0.49, 0.61, 0.69], Some(0.012));
        assert!(text.contains("exponential"));
        assert!(text.contains("max per-target"));
        assert!(text.contains("0.012"));
    }
}
