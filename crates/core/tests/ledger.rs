//! Persistence guarantees of the on-disk budget journal, driven through
//! the public API only.
//!
//! Three families of properties:
//!
//! * **Round-trip** — any admitted charge sequence replays to
//!   bit-identical per-target spend on reopen (ε travels as exact f64
//!   bit patterns).
//! * **Crash tails** — truncating the file at *every* byte boundary, or
//!   flipping an arbitrary byte, recovers a valid charge *prefix*:
//!   recovery may forget unsynced spend (the conservative direction) but
//!   never invents spend, and the repaired journal is stable under
//!   further reopens.
//! * **Kill-mid-batch restart** — a `RecommendationService` killed
//!   without any shutdown hook and restarted on the same journal sees
//!   the identical per-target spend, keeps refusing exhausted targets,
//!   and never lets composed spend exceed the configured budget.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use psr_core::serving::{BatchRequest, ServeError};
use psr_core::{BudgetLedger, JournalLedger, RecommendationService, ServiceConfig};
use psr_datasets::toy::karate_club;
use psr_utility::CommonNeighbors;

/// A unique scratch path (no tempfile crate in the offline vendor set).
fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("psr-ledger-it-{tag}-{}-{n}.journal", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Strategy: a sequence of (target, ε) charge attempts with ε in
/// (0, 0.4], dense enough that finite budgets reject some of them.
fn charge_attempts() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..8, 1u32..=400), 1..48)
        .prop_map(|v| v.into_iter().map(|(t, milli)| (t, f64::from(milli) / 1000.0)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn journal_round_trips_any_admitted_charge_sequence(attempts in charge_attempts()) {
        let path = scratch_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let budget = 1.5;
        let mut admitted: Vec<(u32, f64)> = Vec::new();
        {
            let mut ledger = JournalLedger::open(&path, budget).unwrap();
            for &(target, eps) in &attempts {
                if ledger.try_charge(target, eps).is_ok() {
                    admitted.push((target, eps));
                }
            }
            ledger.sync().unwrap();
        } // killed: durability must not depend on a shutdown hook
        let reopened = JournalLedger::open(&path, budget).unwrap();
        // Replay uses the same accumulation order, so spend is exact.
        let mut expected: HashMap<u32, f64> = HashMap::new();
        for &(target, eps) in &admitted {
            *expected.entry(target).or_insert(0.0) += eps;
        }
        for target in 0u32..8 {
            prop_assert_eq!(
                reopened.spent(target),
                expected.get(&target).copied().unwrap_or(0.0),
                "target {} spend must replay bit-identically", target
            );
        }
    }

    #[test]
    fn corrupting_any_byte_never_invents_spend(
        attempts in charge_attempts(),
        position in 0usize..1 << 16,
        flip in 1u8..=255,
    ) {
        let path = scratch_path("corrupt");
        let _cleanup = Cleanup(path.clone());
        let budget = f64::INFINITY;
        {
            let mut ledger = JournalLedger::open(&path, budget).unwrap();
            for &(target, eps) in &attempts {
                ledger.try_charge(target, eps).unwrap();
            }
            ledger.sync().unwrap();
        }
        let full = JournalLedger::open(&path, budget).unwrap();
        let full_spend: Vec<f64> = (0u32..8).map(|t| full.spent(t)).collect();
        drop(full);

        let mut bytes = std::fs::read(&path).unwrap();
        let at = position % bytes.len();
        bytes[at] ^= flip;
        std::fs::write(&path, &bytes).unwrap();

        // A corrupt header restarts fresh; a corrupt body drops the tail.
        // Either way: a prefix, never new spend, and stable thereafter.
        let recovered = JournalLedger::open(&path, budget).unwrap();
        for target in 0u32..8 {
            prop_assert!(
                recovered.spent(target) <= full_spend[target as usize],
                "corruption must not invent spend for target {}", target
            );
        }
        let spend: Vec<f64> = (0u32..8).map(|t| recovered.spent(t)).collect();
        drop(recovered);
        let again = JournalLedger::open(&path, budget).unwrap();
        let spend_again: Vec<f64> = (0u32..8).map(|t| again.spent(t)).collect();
        prop_assert_eq!(spend, spend_again, "recovery must be stable under reopen");
    }
}

#[test]
fn every_truncation_point_recovers_a_valid_prefix() {
    // Ten identical 0.5-ε charges cycling over four targets: from any
    // byte cut, the replayed spend identifies exactly how many leading
    // charges survived, which pins the whole spend vector.
    let path = scratch_path("truncate-src");
    let _cleanup = Cleanup(path.clone());
    const CHARGES: usize = 10;
    {
        let mut ledger = JournalLedger::open(&path, f64::INFINITY).unwrap();
        for i in 0..CHARGES {
            ledger.try_charge(i as u32 % 4, 0.5).unwrap();
            ledger.sync().unwrap();
        }
    }
    let bytes = std::fs::read(&path).unwrap();

    let cut_path = scratch_path("truncate-cut");
    let _cleanup_cut = Cleanup(cut_path.clone());
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let ledger = JournalLedger::open(&cut_path, f64::INFINITY).unwrap();
        let total: f64 = (0u32..4).map(|t| ledger.spent(t)).sum();
        let replayed = (total / 0.5).round() as usize;
        assert!(replayed <= CHARGES, "cut {cut}: more charges than written");
        assert_eq!(
            total,
            replayed as f64 * 0.5,
            "cut {cut}: spend must be a whole number of charges"
        );
        for target in 0u32..4 {
            let expected = (0..replayed).filter(|i| *i as u32 % 4 == target).count() as f64 * 0.5;
            assert_eq!(
                ledger.spent(target),
                expected,
                "cut {cut}: target {target} must hold a prefix of its charges"
            );
        }
        drop(ledger);
        // The repaired file replays identically on a second open.
        let again = JournalLedger::open(&cut_path, f64::INFINITY).unwrap();
        let total_again: f64 = (0u32..4).map(|t| again.spent(t)).sum();
        assert_eq!(total, total_again, "cut {cut}: repair must be idempotent");
    }
}

/// The serving-layer acceptance check: kill a daemon mid-run (no
/// shutdown hook), restart on the same journal, and the per-target ε
/// spend is identical, exhausted targets stay exhausted, and composed
/// spend never exceeds the budget.
#[test]
fn killed_service_replays_identical_spend_within_composed_budget() {
    let path = scratch_path("kill");
    let _cleanup = Cleanup(path.clone());
    let budget = 2.0;
    let epsilon = 0.75; // two requests fit, a third would compose past 2.0
    let config = ServiceConfig {
        epsilon_per_request: epsilon,
        budget_per_target: budget,
        threads: Some(2),
        ..Default::default()
    };
    let targets: Vec<u32> = (0..6).collect();
    let requests: Vec<BatchRequest> =
        targets.iter().map(|&target| BatchRequest { target, k: 2 }).collect();

    let spend_before: Vec<f64> = {
        let ledger = JournalLedger::open(&path, budget).unwrap();
        let service = RecommendationService::with_ledger(
            karate_club(),
            Box::new(CommonNeighbors),
            config,
            Box::new(ledger),
        );
        // Two full rounds drain every target to 1.5 of the 2.0 budget.
        for round in 0..2 {
            for outcome in service.serve_batch(&requests, 100 + round) {
                outcome.expect("two rounds fit every budget");
            }
        }
        targets.iter().map(|&t| service.spent_budget(t)).collect()
    }; // the service is dropped mid-lifetime: the "kill"

    let ledger = JournalLedger::open(&path, budget).unwrap();
    for (&target, &before) in targets.iter().zip(&spend_before) {
        assert_eq!(before, 1.5, "target {target} spent two requests before the kill");
        assert_eq!(
            ledger.spent(target),
            before,
            "target {target}: replayed spend must be identical to the pre-kill spend"
        );
    }
    let service = RecommendationService::with_ledger(
        karate_club(),
        Box::new(CommonNeighbors),
        config,
        Box::new(ledger),
    );
    // A third round must now be refused for every target: 1.5 + 0.75
    // composes past the 2.0 budget, and the restart remembered it.
    for (request, outcome) in requests.iter().zip(service.serve_batch(&requests, 300)) {
        match outcome {
            Err(ServeError::BudgetExhausted { target, .. }) => assert_eq!(target, request.target),
            other => panic!("target {} must stay exhausted, got {other:?}", request.target),
        }
    }
    for &target in &targets {
        let spent = service.spent_budget(target);
        assert!(
            spent <= budget + 1e-9,
            "target {target}: composed spend {spent} exceeds budget {budget}"
        );
        assert_eq!(spent, 1.5, "refused requests must not charge");
    }
}
