//! Private page/celebrity recommendation on a directed follow graph —
//! the paper's Facebook-Pages / Twitter who-to-follow scenario (§1, §7).
//!
//! Demonstrates two things on a Twitter-like directed graph:
//! 1. the privacy leak that motivates the paper (a recommendation crossing
//!    a community bridge reveals the bridge edge), and
//! 2. the accuracy price of closing that leak with ε-DP mechanisms under
//!    the weighted-paths utility, across γ and ε.
//!
//! Run with `cargo run --release --example page_recommendation`.

use psr_core::{evaluate_target, AccuracyCdf, ExperimentConfig};
use psr_datasets::toy::two_communities;
use psr_datasets::{twitter_like, PresetConfig};
use psr_utility::{CommonNeighbors, SensitivityNorm, UtilityFunction, WeightedPaths};
use rand::SeedableRng;

fn main() {
    // --- Part 1: the leak, on a 10-node toy graph -----------------------
    let toy = two_communities();
    let u = CommonNeighbors.utilities_for(&toy, 0);
    println!("two cliques {{0..4}} and {{5..9}} joined only by the edge (4,5):");
    println!(
        "  the *non-private* best recommendation for node 0 is node {} — \n\
         \x20 any observer learns the bridge edge (4,5) exists. That inference\n\
         \x20 is exactly what differential privacy must suppress.\n",
        u.argmax().unwrap()
    );

    // --- Part 2: what suppression costs at Twitter scale -----------------
    let scale = std::env::var("PSR_SCALE").map_or(0.05, |s| s.parse().expect("numeric scale"));
    let (graph, meta) = twitter_like(PresetConfig::scaled(scale, 2011)).unwrap();
    println!("{}\n", meta.summary());

    let mut sampler = rand::rngs::StdRng::seed_from_u64(99);
    let targets: Vec<u32> = {
        use rand::seq::IteratorRandom;
        graph.nodes().choose_multiple(&mut sampler, 150)
    };

    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>14}",
        "γ", "ε", "median acc", "90th pct", "% below 0.1"
    );
    for gamma in [0.0005, 0.05] {
        for eps in [1.0, 3.0] {
            let wp = WeightedPaths::paper(gamma);
            let sens = wp.sensitivity(&graph).unwrap().value(SensitivityNorm::L1);
            let config =
                ExperimentConfig { epsilon: eps, eval_laplace: false, ..Default::default() };
            let accs: Vec<f64> = targets
                .iter()
                .filter_map(|&t| {
                    let mut rng = rand::rngs::StdRng::seed_from_u64(500 + t as u64);
                    evaluate_target(&graph, &wp, &config, sens, t, &mut rng)
                })
                .map(|e| e.accuracy_exponential)
                .collect();
            if accs.is_empty() {
                continue;
            }
            let cdf = AccuracyCdf::new(accs);
            println!(
                "{gamma:>10} {eps:>10} {:>14.4} {:>14.4} {:>13.1}%",
                cdf.quantile(0.5),
                cdf.quantile(0.9),
                cdf.fraction_at_most(0.1) * 100.0
            );
        }
    }
    println!(
        "\nTakeaway (paper Fig. 2(b)): on follow graphs of this sparsity the\n\
         overwhelming majority of users cannot receive accurate private\n\
         page recommendations even at the lenient ε = 3."
    );
}
