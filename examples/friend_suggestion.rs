//! "People You May Know", privately — the paper's §1 motivating scenario.
//!
//! Builds a Wikipedia-vote-scale social graph and asks: if the platform
//! must guarantee ε-differential edge privacy, what suggestion quality can
//! members of different connectivity levels expect, and does the choice of
//! link-analysis utility matter?
//!
//! Run with `cargo run --release --example friend_suggestion`.

use psr_core::{evaluate_target, ExperimentConfig};
use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_utility::extra::{AdamicAdar, Jaccard};
use psr_utility::{CommonNeighbors, SensitivityNorm, UtilityFunction};
use rand::SeedableRng;

fn main() {
    let scale = std::env::var("PSR_SCALE").map_or(0.25, |s| s.parse().expect("numeric scale"));
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(scale, 2011)).unwrap();
    println!("{}\n", meta.summary());

    let epsilon = 1.0;
    let utilities: Vec<Box<dyn UtilityFunction>> =
        vec![Box::new(CommonNeighbors), Box::new(AdamicAdar), Box::new(Jaccard)];

    // Pick three representative members: weakly, moderately and strongly
    // connected (the paper's Fig. 2(c) dimension).
    let mut by_degree: Vec<u32> = graph.nodes().filter(|&v| graph.degree(v) > 0).collect();
    by_degree.sort_by_key(|&v| graph.degree(v));
    let picks = [
        ("low-degree", by_degree[by_degree.len() / 20]),
        ("median", by_degree[by_degree.len() / 2]),
        ("hub", *by_degree.last().unwrap()),
    ];

    let config = ExperimentConfig { epsilon, eval_laplace: false, ..Default::default() };
    println!("expected suggestion accuracy at ε = {epsilon}:");
    println!(
        "{:>22} {:>10} {:>12} {:>12} {:>12}",
        "member", "degree", "common-nbrs", "adamic-adar", "jaccard"
    );
    for (label, member) in picks {
        let mut row =
            format!("{:>22} {:>10}", format!("{label} (#{member})"), graph.degree(member));
        for utility in &utilities {
            let sens = utility.sensitivity(&graph).unwrap().value(SensitivityNorm::L1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7 + member as u64);
            let eval = evaluate_target(&graph, utility.as_ref(), &config, sens, member, &mut rng);
            match eval {
                Some(e) => row.push_str(&format!(" {:>12.4}", e.accuracy_exponential)),
                None => row.push_str(&format!(" {:>12}", "n/a")),
            }
        }
        println!("{row}");
    }

    println!(
        "\nTakeaway (paper §7.2): the least connected members — the ones who\n\
         would benefit most from suggestions — are exactly the ones whose\n\
         suggestions privacy degrades the most, under every utility function."
    );
}
