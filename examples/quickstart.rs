//! Quickstart: serve one differentially private friend suggestion.
//!
//! Run with `cargo run --example quickstart`.

use psr_core::{Recommender, RecommenderConfig};
use psr_datasets::toy::karate_club;
use psr_privacy::ExponentialMechanism;
use psr_utility::{CommonNeighbors, UtilityFunction};
use rand::SeedableRng;

fn main() {
    let graph = karate_club();
    println!(
        "Zachary's karate club: {} members, {} friendships\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    // The paper's pipeline: graph → utility function → DP mechanism.
    let epsilon = 1.0;
    let recommender = Recommender::new(
        graph.clone(),
        Box::new(CommonNeighbors),
        Box::new(ExponentialMechanism::paper()),
        RecommenderConfig { epsilon, ..Default::default() },
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(2011);
    let target = 0u32; // the instructor
    println!("ε = {epsilon} private suggestions for member {target}:");
    for round in 1..=5 {
        let suggestion = recommender.recommend(target, &mut rng).expect("candidates exist");
        let utility = CommonNeighbors.utilities_for(&graph, target).get(suggestion);
        println!("  round {round}: member {suggestion:2} (shares {utility} friends)");
    }

    // How much accuracy does privacy cost here? Compare the mechanism's
    // expected accuracy against the best any ε-DP algorithm could do
    // (Corollary 1 of the paper).
    let u = CommonNeighbors.utilities_for(&graph, target);
    let t = CommonNeighbors.edit_distance_t(&graph, target, &u).unwrap();
    let achieved = recommender.expected_accuracy(target, &mut rng).unwrap();
    let ceiling = psr_bounds::best_accuracy_bound(&u, epsilon, t, None);
    println!(
        "\nexpected accuracy {:.3} vs theoretical ceiling {:.3} (t = {t}, k = {}, c = {:.2})",
        achieved, ceiling.accuracy_bound, ceiling.k, ceiling.c
    );
    println!(
        "the non-private optimum would always return a node with {} shared friends",
        u.u_max()
    );
}
