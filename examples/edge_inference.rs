//! Edge inference on the karate club: watching recommendations reveals
//! your friendships — unless the mechanism is differentially private.
//!
//! The demo plays the paper's Lemma-1 game end to end. A secret edge
//! `(u, v)` either exists or not; an adversary watches the
//! recommendations served to a handful of `u`'s friends (never to `u` or
//! `v` themselves) and guesses. Two services answer through the *same*
//! `RecommendationService` code path:
//!
//! * the **non-private top-k baseline** (a huge ε): its answers are
//!   deterministic, so a few rounds identify the world at high
//!   confidence — advantage far above what *any* ε ≤ 1 DP mechanism
//!   could permit;
//! * the **ε = 0.5 Exponential mechanism**: its single-observation
//!   advantage stays near the Lemma-1 ceiling `(e^ε − 1)/(e^ε + 1)`, and
//!   the empirical-ε estimate (with its Clopper–Pearson lower bound)
//!   stays at or below the configured budget.
//!
//! Run with `cargo run --release --example edge_inference`.

use std::sync::Arc;

use psr_attack::{
    dp_advantage_ceiling, leaking_secret_edge, AttackMechanism, EdgeInferenceScenario,
    ReconstructionAdversary, ScenarioConfig,
};
use psr_datasets::toy::karate_club;
use psr_utility::CommonNeighbors;

fn main() {
    let graph = Arc::new(karate_club());
    let (secret, observers) =
        leaking_secret_edge(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    println!("karate club, {} nodes / {} edges", graph.num_nodes(), graph.num_edges());
    println!(
        "secret edge: ({}, {});  observers (friends of {}): {:?}\n",
        secret.0, secret.1, secret.0, observers
    );

    // --- The non-private baseline: a few rounds give the edge away. ---
    let non_private = EdgeInferenceScenario::new(
        Arc::clone(&graph),
        Box::new(CommonNeighbors),
        ScenarioConfig {
            rounds: 6,
            trials_per_world: 48,
            mechanism: AttackMechanism::NonPrivateTopK,
            seed: 2011,
            ..ScenarioConfig::new(secret, observers.clone())
        },
    );
    let np = non_private.attack(&non_private.collect(), &ReconstructionAdversary);
    let np_cmp = non_private.compare(&np);
    let ceiling_at_one = dp_advantage_ceiling(1.0);
    println!("non-private top-k baseline (6 rounds x {} observers):", observers.len());
    println!("  mean accuracy            {:.4}", np_cmp.mean_accuracy.unwrap_or(f64::NAN));
    println!("  adversary advantage      {:.4}", np.advantage.advantage);
    println!("  Lemma-1 ceiling at eps=1 {ceiling_at_one:.4}");
    println!(
        "  empirical eps            {:.3} (certified lower bound {:.3} at {:.0}% confidence)",
        np.empirical_epsilon.point,
        np.empirical_epsilon.lower,
        100.0 * np.empirical_epsilon.confidence
    );
    assert!(
        np.advantage.advantage > ceiling_at_one,
        "the baseline must leak past the ceiling for every eps <= 1"
    );
    println!(
        "  => the observed leak is incompatible with *any* eps <= 1 DP mechanism\n     \
         (accuracy {:.3} alone implies eps >= {:.1} via Corollary 1)\n",
        np_cmp.mean_accuracy.unwrap_or(f64::NAN),
        np_cmp.accuracy_epsilon_floor.unwrap_or(f64::INFINITY),
    );

    // --- The DP mechanism: one observation, eps = 0.5 of budget. ---
    let eps = 0.5;
    let private = EdgeInferenceScenario::new(
        Arc::clone(&graph),
        Box::new(CommonNeighbors),
        ScenarioConfig {
            observers: observers[..1].to_vec(),
            rounds: 1,
            trials_per_world: 64,
            mechanism: AttackMechanism::Exponential { epsilon: eps },
            seed: 2011,
            ..ScenarioConfig::new(secret, observers.clone())
        },
    );
    let dp = private.attack(&private.collect(), &ReconstructionAdversary);
    let ceiling = dp_advantage_ceiling(eps);
    println!("exponential mechanism, eps = {eps}, one observation per trial:");
    println!("  adversary advantage      {:.4}", dp.advantage.advantage);
    println!("  Lemma-1 ceiling at eps   {ceiling:.4}");
    println!(
        "  empirical eps            {:.3} (certified lower bound {:.3})",
        dp.empirical_epsilon.point, dp.empirical_epsilon.lower
    );
    assert!(
        dp.empirical_epsilon.lower <= eps,
        "the certified leak must stay within the configured budget"
    );
    println!(
        "  => the strongest (Neyman-Pearson) adversary stays at the ceiling: the\n     \
         mechanism leaks exactly what eps = {eps} permits, and no more"
    );
}
