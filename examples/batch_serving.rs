//! Batch serving under a privacy budget — the paper's mechanisms as a
//! production surface.
//!
//! A platform rarely answers one recommendation ever: members come back,
//! and every answer spends privacy. This example stands up a
//! `RecommendationService` over a Wikipedia-vote-scale graph shared via
//! `Arc`, serves a mixed batch of `(target, k)` requests across the
//! worker pool, then keeps re-querying one member until the per-target
//! ε budget runs out and the service starts refusing with a typed error.
//!
//! Run with `cargo run --release --example batch_serving`.

use std::sync::Arc;

use psr_core::serving::{BatchRequest, RecommendationService, ServiceConfig};
use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_utility::CommonNeighbors;

fn main() {
    let scale = std::env::var("PSR_SCALE").map_or(0.25, |s| s.parse().expect("numeric scale"));
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(scale, 2011)).unwrap();
    println!("{}\n", meta.summary());

    let graph = Arc::new(graph);
    let service = RecommendationService::new(
        Arc::clone(&graph),
        Box::new(CommonNeighbors),
        ServiceConfig { epsilon_per_request: 1.0, budget_per_target: 3.0, ..Default::default() },
    );

    // A burst of requests: ten members, growing slot counts, one duplicate.
    let mut requests: Vec<BatchRequest> = graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .take(10)
        .enumerate()
        .map(|(i, target)| BatchRequest { target, k: 1 + i % 3 })
        .collect();
    requests.push(requests[0]); // the first member asks again

    println!("batch of {} requests (ε = 1 each, budget 3 per member):", requests.len());
    for (request, outcome) in requests.iter().zip(service.serve_batch(&requests, 42)) {
        match outcome {
            Ok(served) => println!(
                "  member {:>5} k={}: {:?}{} (utility {:.0}, ε left {:.0})",
                request.target,
                request.k,
                served.recommendations,
                if served.zero_class_picks > 0 {
                    format!(" [{} cold-start pick(s)]", served.zero_class_picks)
                } else {
                    String::new()
                },
                served.total_utility,
                service.remaining_budget(request.target),
            ),
            Err(error) => {
                println!("  member {:>5} k={}: REFUSED — {error}", request.target, request.k)
            }
        }
    }

    // Keep asking for the first member until the accountant says no.
    let hot = requests[0].target;
    println!("\nmember {hot} keeps asking (budget 3, already spent 2):");
    for round in 0..3 {
        match service.serve_one(hot, 1, 1000 + round) {
            Ok(served) => println!(
                "  round {round}: {:?}, ε remaining {:.0}",
                served.recommendations,
                service.remaining_budget(hot)
            ),
            Err(error) => println!("  round {round}: REFUSED — {error}"),
        }
    }
    println!(
        "\nthe refusal is the feature: past the budget, any further answer would\n\
         break the ε-DP guarantee the mechanisms were calibrated for (App. A)."
    );
}
