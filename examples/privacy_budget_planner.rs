//! Privacy budget planner — the paper's theory as an operator tool.
//!
//! Given a platform's graph statistics, answers: *what ε must we spend for
//! which members to get useful recommendations?* Inverts the paper's
//! bounds (Lemma 1, Theorems 1–3, Theorem 5) instead of running any
//! mechanism.
//!
//! Run with `cargo run --example privacy_budget_planner`.

use psr_bounds::theorems::{
    theorem1_eps_lower_asymptotic, theorem2_eps_lower_finite, theorem3_eps_lower_finite,
};
use psr_bounds::{corollary1_accuracy_upper_bound, lemma1_eps_lower_bound};

fn main() {
    // A mid-size social platform.
    let n = 10_000_000usize;
    println!("platform: n = {n} users\n");

    // --- Per-degree ε requirements (Theorem 2 engine) --------------------
    println!("minimum ε for *constant-accuracy* common-neighbour suggestions");
    println!("(finite-n Lemma 2 with t = d_r + 2, β = 1):");
    println!("{:>12} {:>12}", "degree d_r", "ε required");
    for d_r in [5usize, 15, 50, 150, 500, 1500] {
        let eps = theorem2_eps_lower_finite(n, d_r, 1);
        println!("{d_r:>12} {eps:>12.3}");
    }

    // --- The worked example of §4.2 --------------------------------------
    let bound = corollary1_accuracy_upper_bound(0.1, 150, 400_000_000, 100, 0.99);
    println!(
        "\n§4.2 worked example (n = 4·10⁸, k = 100, t = 150, ε = 0.1):\n  \
         no algorithm can exceed accuracy {bound:.2} — the paper reports ≈ 0.46"
    );

    // --- Accuracy targets → ε (Lemma 1 inverted) -------------------------
    println!("\nε needed to *permit* accuracy 1−δ (k = 100 strong candidates, t = 150):");
    println!("{:>12} {:>12}", "accuracy", "ε floor");
    for acc in [0.5, 0.8, 0.9, 0.99] {
        let eps = lemma1_eps_lower_bound(0.99, 1.0 - acc, n, 100, 150);
        println!("{acc:>12.2} {eps:>12.3}");
    }

    // --- Utility-family comparison ---------------------------------------
    let d_r = 30usize;
    println!("\nε floors at degree {d_r} across utility families:");
    println!("  any utility   (Thm 1, d_max = ln n): {:.3}", theorem1_eps_lower_asymptotic(1.0));
    println!("  common nbrs   (Thm 2):               {:.3}", theorem2_eps_lower_finite(n, d_r, 1));
    for s in [0.001, 0.05] {
        match theorem3_eps_lower_finite(n, d_r, 1, s) {
            Some(eps) => println!("  weighted paths (Thm 3, γ·d_max = {s}):   {eps:.3}"),
            None => println!("  weighted paths (Thm 3, γ·d_max = {s}):   bound degenerates"),
        }
    }

    // --- Smoothing fallback (Appendix F) ----------------------------------
    println!("\nsampling/smoothing mechanism A_S(x) (needs no utility vector):");
    println!("{:>8} {:>14} {:>18}", "ε", "max x", "accuracy ceiling");
    for eps in [0.5, 1.0, 3.0, (n as f64).ln()] {
        let x = psr_privacy::LinearSmoothing::x_for_epsilon(eps, n);
        println!("{eps:>8.2} {x:>14.3e} {:>18.3e}", x * 1.0);
    }
    println!(
        "\nTakeaway: below ε ≈ ln n, every row of every table says the same\n\
         thing the paper's title asks — accurate or private, pick one."
    );
}
