//! Node-identity privacy on the karate club: hiding *who you are
//! connected to at all* is essentially impossible for an accurate
//! recommender (Appendix A).
//!
//! The demo plays the paper's node-adjacency game end to end. Two worlds
//! differ in one node's **entire edge set**: world 0 keeps node `v`'s
//! neighbourhood, world 1 rewires it to a disjoint target set (the
//! minimal `psr_graph::rewire_node` batch). An adversary watches the
//! recommendations served to a handful of non-adjacent observers and
//! guesses the world. Two services answer through the *same*
//! `RecommendationService` code path:
//!
//! * the **non-private top-k baseline**: the rewire moves whole utility
//!   units, so a few rounds certify an empirical ε̂ lower bound *above
//!   the Appendix-A theory floor* `node_privacy_eps_lower(n, 1)` — and
//!   far above every usable budget, the constructive reading of
//!   `ε ≥ ln(n)/2`;
//! * the **ε = 0.5 Exponential mechanism**: even against the rewire, the
//!   certified ε̂ stays within the composed transcript budget (and a
//!   fortiori within the `rewire_size ×` group-privacy budget node
//!   adjacency would grant it).
//!
//! Run with `cargo run --release --example node_identity`.

use std::sync::Arc;

use psr_attack::{
    dp_advantage_ceiling, leaking_node_rewire, AttackMechanism, NodeEpochStyle,
    NodeIdentityScenario, NodeScenarioConfig, ReconstructionAdversary,
};
use psr_datasets::toy::karate_club;
use psr_utility::CommonNeighbors;

fn main() {
    let graph = Arc::new(karate_club());
    let n = graph.num_nodes();
    let (node, new_neighbours, observers) =
        leaking_node_rewire(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    println!("karate club, {} nodes / {} edges", n, graph.num_edges());
    println!(
        "rewired node: {node} (degree {} -> {});  observers: {observers:?}",
        graph.degree(node),
        new_neighbours.len()
    );
    println!(
        "Appendix-A floors: node_privacy_eps_lower({n}, 1) = {:.3}, ln(n)/2 = {:.3}\n",
        psr_bounds::node_privacy::node_privacy_eps_lower(n, 1),
        psr_bounds::node_privacy::node_privacy_eps_lower_asymptotic(n),
    );

    // --- The non-private baseline: the rewire gives the node away. ---
    let non_private = NodeIdentityScenario::new(
        Arc::clone(&graph),
        Box::new(CommonNeighbors),
        NodeScenarioConfig {
            rounds: 6,
            trials_per_world: 48,
            mechanism: AttackMechanism::NonPrivateTopK,
            seed: 2011,
            ..NodeScenarioConfig::new(node, new_neighbours.clone(), observers.clone())
        },
    );
    let np = non_private.attack(&non_private.collect(), &ReconstructionAdversary);
    let np_cmp = non_private.compare(&np);
    let floor = np_cmp.node_epsilon_lower.expect("node overlay");
    println!("non-private top-k baseline (6 rounds x {} observers):", observers.len());
    println!("  adversary advantage      {:.4}", np.advantage.advantage);
    println!(
        "  empirical eps            {:.3} (certified lower bound {:.3} at {:.0}% confidence)",
        np.empirical_epsilon.point,
        np.empirical_epsilon.lower,
        100.0 * np.empirical_epsilon.confidence
    );
    println!("  Appendix-A finite floor  {floor:.3}");
    assert!(
        np.advantage.advantage > dp_advantage_ceiling(1.0),
        "the baseline must clear the Lemma-1 ceiling for every eps <= 1"
    );
    assert!(np.empirical_epsilon.lower > 1.0, "the certified leak must exceed every usable budget");
    assert!(
        np.empirical_epsilon.lower > floor,
        "the measured leak must sit above the Appendix-A theory floor {floor}"
    );
    println!(
        "  => the certified leak sits ABOVE the node-privacy floor: accurate serving\n     \
         cannot hide a node's neighbourhood, exactly as Appendix A proves\n"
    );

    // --- The DP mechanism, attacked across a live rewire epoch. ---
    let eps = 0.5;
    let private = NodeIdentityScenario::new(
        Arc::clone(&graph),
        Box::new(CommonNeighbors),
        NodeScenarioConfig {
            rounds: 4,
            trials_per_world: 48,
            mechanism: AttackMechanism::Exponential { epsilon: eps },
            epochs: NodeEpochStyle::RewireMidStream { prefix_rounds: 1 },
            seed: 2011,
            ..NodeScenarioConfig::new(node, new_neighbours, observers.clone())
        },
    );
    let dp = private.attack(&private.collect(), &ReconstructionAdversary);
    let budget = private.transcript_epsilon().expect("budgeted");
    println!("exponential mechanism, eps = {eps}, rewire applied mid-stream (epoch 1):");
    println!("  adversary advantage      {:.4}", dp.advantage.advantage);
    println!(
        "  empirical eps            {:.3} (certified lower bound {:.3})",
        dp.empirical_epsilon.point, dp.empirical_epsilon.lower
    );
    println!(
        "  transcript budget        {budget:.3} (x{} group privacy = {:.3} at node level)",
        private.rewire_size(),
        private.node_transcript_epsilon().expect("budgeted"),
    );
    assert!(
        dp.empirical_epsilon.lower <= budget,
        "the certified leak must stay within the composed transcript budget"
    );
    println!(
        "  => even a whole-neighbourhood rewire served through live mutation epochs\n     \
         certifies no more than the composed budget permits"
    );
}
