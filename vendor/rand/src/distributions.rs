//! The [`Distribution`] trait and the [`Standard`] distribution.

use crate::{Rng, RngCore};

/// A distribution that can produce values of `T` from uniform bits.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (*self).sample(rng)
    }
}

/// The "natural" uniform distribution of a type: `f64`/`f32` in `[0, 1)`,
/// integers over their full range, fair `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64
);

/// Uniform distribution over a half-open range, mirroring
/// `rand::distributions::Uniform`'s basic constructor.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    low: T,
    high: T,
}

impl<T: crate::SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        assert!(low < high, "Uniform::new: empty range");
        Uniform { low, high }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> UniformInclusive<T> {
        assert!(low <= high, "Uniform::new_inclusive: empty range");
        UniformInclusive { low, high }
    }
}

impl<T: crate::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        rng.gen_range(self.low..self.high)
    }
}

/// Uniform distribution over a closed range.
#[derive(Debug, Clone, Copy)]
pub struct UniformInclusive<T> {
    low: T,
    high: T,
}

impl<T: crate::SampleUniform> Distribution<T> for UniformInclusive<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform_inclusive(rng, self.low, self.high)
    }
}
