//! Vendored stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of rand 0.8: [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! [`thread_rng`], and the [`seq`] slice/iterator helpers. Streams are *not*
//! bit-compatible with upstream rand (which uses ChaCha12 for `StdRng`), but
//! they are deterministic for a fixed seed, which is what the reproduction's
//! tests rely on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of uniform bits.
///
/// Object-safe so mechanisms can take `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type has a [`Standard`] distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it with SplitMix64,
    /// mirroring rand's convenience constructor.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Helper trait for types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Samples uniformly from `[low, high)` (`high` excluded).
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]` (`high` included).
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a single value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_uniform_inclusive(rng, low, high)
    }
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        let low_bits = m as u64;
        if low_bits < span {
            let threshold = span.wrapping_neg() % span;
            if low_bits < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                ((low as i128) + offset as i128) as $t
            }
            fn sample_uniform_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return ((low as i128) + rng.next_u64() as i128) as $t;
                }
                let offset = uniform_u64_below(rng, span as u64);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Largest finite `f64` strictly below `x` (`x` finite and non-NaN).
fn f64_next_down(x: f64) -> f64 {
    if x == 0.0 {
        return -f64::from_bits(1); // largest value below ±0.0
    }
    let bits = x.to_bits();
    if x.is_sign_positive() {
        f64::from_bits(bits - 1)
    } else {
        f64::from_bits(bits + 1)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit: f64 = Standard.sample(rng);
        let value = low + (high - low) * unit;
        if value < high {
            value
        } else {
            // Guard against rounding up to the excluded endpoint.
            f64_next_down(high).max(low)
        }
    }
    fn sample_uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit: f64 = Standard.sample(rng);
        low + (high - low) * unit
    }
}

/// Returns a lazily-seeded thread-local generator.
///
/// Seeding mixes the wall clock and a per-thread counter: good enough for
/// examples and demos. Tests in this workspace use
/// [`SeedableRng::seed_from_u64`] instead so every run is reproducible.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn float_ranges_respect_exclusive_endpoints() {
        // Negative and zero-crossing ranges must never emit NaN or the
        // excluded endpoint, even on the rounding edge.
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..50_000 {
            let x = r.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&x), "got {x}");
            let y = r.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&y), "got {y}");
        }
        assert!(f64_next_down(0.0) < 0.0);
        assert!(f64_next_down(-1.0) < -1.0);
        assert_eq!(f64_next_down(1.0), f64::from_bits(1.0f64.to_bits() - 1));
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn dyn_rng_core_supports_gen() {
        let mut r = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut r;
        let x: f64 = dyn_rng.gen();
        assert!((0.0..1.0).contains(&x));
        let k = dyn_rng.gen_range(0u32..10);
        assert!(k < 10);
    }
}
