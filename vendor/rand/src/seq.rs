//! Sequence helpers: shuffling and random selection from slices/iterators.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `amount` distinct elements in random order (fewer if the
    /// slice is shorter), as an iterator over references.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index table.
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..indices.len());
            indices.swap(i, j);
        }
        indices.into_iter().take(amount).map(|i| &self[i]).collect::<Vec<_>>().into_iter()
    }
}

/// Random selection from arbitrary iterators (reservoir sampling).
pub trait IteratorRandom: Iterator + Sized {
    /// Returns one uniformly random item, or `None` if the iterator is empty.
    fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = self.next()?;
        for (seen, item) in (2usize..).zip(self) {
            if rng.gen_range(0..seen) == 0 {
                chosen = item;
            }
        }
        Some(chosen)
    }

    /// Returns `amount` uniformly random items without replacement (fewer if
    /// the iterator is shorter). Order is not specified.
    fn choose_multiple<R: RngCore + ?Sized>(
        mut self,
        rng: &mut R,
        amount: usize,
    ) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        for _ in 0..amount {
            match self.next() {
                Some(item) => reservoir.push(item),
                None => return reservoir,
            }
        }
        for (seen, item) in (amount + 1..).zip(self) {
            let k = rng.gen_range(0..seen);
            if k < amount {
                reservoir[k] = item;
            }
        }
        reservoir
    }
}

impl<I: Iterator> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut r = StdRng::seed_from_u64(2);
        let v: Vec<u32> = (0..10).collect();
        let mut picks: Vec<u32> = v.choose_multiple(&mut r, 4).copied().collect();
        assert_eq!(picks.len(), 4);
        picks.sort_unstable();
        picks.dedup();
        assert_eq!(picks.len(), 4);
        assert_eq!(v.choose_multiple(&mut r, 99).count(), 10);
    }

    #[test]
    fn iterator_choose_multiple_without_replacement() {
        let mut r = StdRng::seed_from_u64(3);
        let mut picks = (0u32..100).choose_multiple(&mut r, 5);
        assert_eq!(picks.len(), 5);
        picks.sort_unstable();
        picks.dedup();
        assert_eq!(picks.len(), 5);
        assert!((0u32..0).choose(&mut r).is_none());
    }
}
