//! Concrete generators: [`StdRng`] and the lazily-seeded [`ThreadRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Upstream rand 0.8 backs `StdRng` with ChaCha12; the streams differ but the
/// contract the reproduction relies on — high statistical quality and full
/// determinism under [`SeedableRng::seed_from_u64`] — is the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        if s == [0; 4] {
            // xoshiro must not start from the all-zero state.
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xFE9B_5742_B132_F8E1,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.step().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

std::thread_local! {
    static THREAD_RNG: std::cell::RefCell<StdRng> = std::cell::RefCell::new({
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        // Mix in a per-thread address so simultaneous threads diverge.
        let local = 0u8;
        StdRng::seed_from_u64(nanos ^ (std::ptr::addr_of!(local) as u64).rotate_left(17))
    });
}

/// Handle to a lazily-seeded thread-local [`StdRng`].
///
/// Not reproducible across runs — reserved for examples; tests seed their own
/// [`StdRng`].
#[derive(Debug, Clone, Default)]
pub struct ThreadRng(());

impl ThreadRng {
    pub(crate) fn new() -> Self {
        ThreadRng(())
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u32())
    }

    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}
