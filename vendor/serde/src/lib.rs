//! Vendored stand-in for [`serde`](https://serde.rs) (the build environment
//! has no network access).
//!
//! Instead of upstream serde's visitor architecture, this crate uses a simple
//! tree data model: [`Serialize`] renders a type into a [`Value`], and
//! [`Deserialize`] rebuilds the type from one. `serde_json` (also vendored)
//! converts between [`Value`] and JSON text. The derive macros are re-exported
//! from `serde_derive` so `#[derive(Serialize, Deserialize)]` works as usual
//! for named-field structs and unit-variant enums.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the common tree both JSON text and typed Rust values
/// convert through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    Int(i64),
    /// Unsigned integer (non-negative JSON numbers without a fraction).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`].
    pub fn get_field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected an object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Borrows the string content of a [`Value::Str`].
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::new(format!("expected a string, found {}", other.kind()))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected a boolean, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(Error::new(format!(
                            "expected an unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::new(format!("{u} overflows i64")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::new(format!(
                            "expected an integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::new(format!(
                        "expected a number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned)
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        T::serialize(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(Deserialize::deserialize).collect(),
            other => Err(Error::new(format!("expected an array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:literal),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::new(format!(
                        "expected an array of length {}, found {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0) => 1,
    (A: 0, B: 1) => 2,
    (A: 0, B: 1, C: 2) => 3,
    (A: 0, B: 1, C: 2, D: 3) => 4
);
