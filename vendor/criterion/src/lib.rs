//! Vendored stand-in for [`criterion`](https://bheisler.github.io/criterion.rs)
//! (the build environment has no network access).
//!
//! Exposes the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], `criterion_group!`, `criterion_main!` — backed by a simple
//! wall-clock sampler: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples, and the median/min/max per-iteration times are
//! printed. No statistical analysis, plots, or baselines.
//!
//! Like upstream criterion, passing `--test` on the bench binary's command
//! line (`cargo bench --bench <name> -- --test`) switches to test mode:
//! every routine runs exactly once with a single iteration and no timing —
//! CI smoke coverage for the benched paths at negligible cost.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The sampler's summary for one timed benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Full benchmark id (`group/case` or a bare `bench_function` name).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
}

/// Every timed case recorded so far, in execution order. Test-mode runs
/// (`-- --test`) record nothing: they neither time nor sample.
static RESULTS: Mutex<Vec<CaseResult>> = Mutex::new(Vec::new());

/// Drains the recorded case summaries, leaving the registry empty.
/// Bench binaries call this from `main` after the groups have run to
/// serialise a machine-readable snapshot next to the printed report.
pub fn take_results() -> Vec<CaseResult> {
    std::mem::take(&mut *RESULTS.lock().expect("results registry poisoned"))
}

/// How `iter_batched` should weigh setup cost; accepted for API
/// compatibility, the sampler treats every variant the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            test_mode: std::env::args().skip(1).any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        let sample_size = self.default_sample_size;
        let test_mode = self.test_mode;
        BenchmarkGroup { _criterion: self, name, sample_size, test_mode }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, self.test_mode, routine);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.test_mode, routine);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    test_mode: bool,
    mut routine: impl FnMut(&mut Bencher),
) {
    if test_mode {
        // Smoke mode: execute the routine once with a single iteration.
        let mut bencher = Bencher { per_iter_nanos: 0.0, test_mode: true };
        routine(&mut bencher);
        println!("  {id}: ok (test mode, 1 iteration)");
        return;
    }
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size.max(1));
    // One warm-up sample, discarded.
    let mut bencher = Bencher { per_iter_nanos: 0.0, test_mode: false };
    routine(&mut bencher);
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher { per_iter_nanos: 0.0, test_mode: false };
        routine(&mut bencher);
        samples.push(bencher.per_iter_nanos);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    RESULTS.lock().expect("results registry poisoned").push(CaseResult {
        id: id.to_owned(),
        median_ns: median,
        min_ns: samples[0],
        max_ns: *samples.last().unwrap(),
    });
    println!(
        "  {id}: median {} (min {}, max {}, {} samples)",
        format_nanos(median),
        format_nanos(samples[0]),
        format_nanos(*samples.last().unwrap()),
        samples.len()
    );
}

fn format_nanos(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

/// Target duration of one timed sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    per_iter_nanos: f64,
    test_mode: bool,
}

impl Bencher {
    /// Times repeated calls of `routine`, scaling the iteration count to the
    /// sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in the budget?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.per_iter_nanos = once.as_nanos() as f64;
            return;
        }
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter_nanos = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        if self.test_mode {
            self.per_iter_nanos = once.as_nanos() as f64;
            return;
        }
        let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.per_iter_nanos = total.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
