//! Vendored stand-in for the `memmap2` crate (offline build).
//!
//! Exposes the one thing `psr-graph` needs: a read-only, `Deref<Target =
//! [u8]>` mapping of an entire file. On Unix this is a real `mmap(2)` private
//! read-only mapping released via `munmap(2)` on drop; elsewhere
//! [`Mmap::map`] returns an error and callers fall back to heap reads.
//!
//! Divergence from upstream: upstream's `Mmap::map` is an `unsafe fn`
//! because a file that is truncated or rewritten while mapped can fault or
//! change underneath the reader. This stand-in exposes a safe function and
//! instead documents the contract: **the mapped file must not be modified
//! for the lifetime of the mapping**. Callers in this workspace only map
//! immutable snapshot files they validate once at open time.

#![deny(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only memory mapping of an entire file.
///
/// Dereferences to `&[u8]`. An empty file maps to an empty slice without
/// touching `mmap(2)` (zero-length mappings are an `EINVAL`).
#[derive(Debug)]
pub struct Mmap {
    ptr: *const u8,
    len: usize,
}

// SAFETY (by construction, not by `unsafe` keyword — this crate is the one
// workspace member allowed to reason about it): the mapping is PROT_READ /
// MAP_PRIVATE, never handed out mutably, and freed exactly once in `Drop`.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// The file must not be modified while the mapping is alive; see the
    /// crate docs for the divergence from upstream's `unsafe fn` signature.
    #[cfg(unix)]
    pub fn map(file: &File) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;

        let len = file.metadata()?.len();
        let len: usize = len
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(), len: 0 });
        }
        // SAFETY: fd is valid for the duration of the call; length is the
        // current file size; PROT_READ + MAP_PRIVATE cannot alias writable
        // memory we hand out elsewhere.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::MAP_FAILED || ptr.is_null() {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr: ptr as *const u8, len })
    }

    /// Mapping is unsupported off Unix; callers fall back to heap reads.
    #[cfg(not(unix))]
    pub fn map(_file: &File) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only supported on unix in this vendored build",
        ))
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is either a live PROT_READ mapping of `len` bytes or
        // a dangling pointer paired with `len == 0` (valid for empty slices).
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len > 0 {
            // SAFETY: `ptr`/`len` came from a successful `mmap` and are
            // unmapped exactly once.
            unsafe {
                let _ = sys::munmap(self.ptr as *mut _, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scratch(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("memmap2-standin-{}-{name}", std::process::id()));
        p
    }

    #[test]
    #[cfg(unix)]
    fn maps_file_contents() {
        let path = scratch("contents");
        let payload = b"hello mapped world".repeat(100);
        std::fs::File::create(&path).and_then(|mut f| f.write_all(&payload)).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(unix)]
    fn empty_file_maps_to_empty_slice() {
        let path = scratch("empty");
        std::fs::File::create(&path).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert_eq!(&map[..], b"");
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }
}
