//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type. `Debug` so failing inputs can be reported.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Randomly permutes each generated collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.map)(self.inner.new_value(rng))
    }
}

/// Collections whose element order can be randomly permuted in place.
pub trait Shuffleable {
    /// Shuffles `self` using `rng`.
    fn shuffle(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut StdRng) {
        rand::seq::SliceRandom::shuffle(self.as_mut_slice(), rng);
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Debug, Clone)]
pub struct Shuffle<S> {
    inner: S,
}

impl<S> Strategy for Shuffle<S>
where
    S: Strategy,
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let mut value = self.inner.new_value(rng);
        value.shuffle(rng);
        value
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);
