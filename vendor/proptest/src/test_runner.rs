//! Deterministic case runner.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a [`TestRunner`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

/// Default case count when a suite does not configure one.
pub const DEFAULT_CASES: u32 = 256;

impl ProptestConfig {
    /// A configuration running `cases` cases (unless overridden by the
    /// `PROPTEST_CASES` environment variable — CI uses this to bound suite
    /// runtime without editing test code).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases: env_cases().unwrap_or(cases) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self::with_cases(DEFAULT_CASES)
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion: the property does not hold.
    Fail(String),
    /// The case was discarded by `prop_assume!`; another will be generated.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "test case failed: {message}"),
            TestCaseError::Reject(reason) => write!(f, "test case rejected: {reason}"),
        }
    }
}

/// Runs a property over a deterministic stream of generated cases.
///
/// The RNG seed is a fixed constant, so a given binary fails (or passes)
/// identically on every machine and every run; there is no regression
/// persistence and no shrinking.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

/// Fixed master seed for case generation ("PROPTEST" in hex-speak).
const MASTER_SEED: u64 = 0x5052_4F50_5445_5354;

/// Rejection budget per successful case, mirroring upstream's default
/// `max_global_rejects` ratio.
const REJECTS_PER_CASE: u64 = 256;

impl TestRunner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `test` against `cases` generated inputs, panicking on the first
    /// failure with the offending input.
    ///
    /// # Panics
    /// Panics if any case fails, or if `prop_assume!` rejects more than
    /// `256 × cases` candidates.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let cases = u64::from(self.config.cases);
        let mut rng = StdRng::seed_from_u64(MASTER_SEED);
        let mut passed: u64 = 0;
        let mut rejected: u64 = 0;
        while passed < cases {
            let value = strategy.new_value(&mut rng);
            let shown = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > REJECTS_PER_CASE * cases {
                        panic!(
                            "proptest: too many rejected cases \
                             ({rejected} rejects for {passed}/{cases} passes); \
                             loosen the prop_assume! preconditions"
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "proptest: property failed after {passed} passing case(s)\n\
                         {message}\n\
                         input: {shown}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_ranges_respect_bounds(x in 3u32..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn shuffle_preserves_elements(
            v in Just((0u32..20).collect::<Vec<u32>>()).prop_shuffle(),
        ) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0u32..20).collect::<Vec<u32>>());
        }

        #[test]
        fn assume_discards_instead_of_failing(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn failures_panic_with_input() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
            runner.run(&(0u32..100,), |(x,)| {
                prop_assert!(x < 1, "x was {x}");
                Ok(())
            });
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("input:"), "panic message names the input: {message}");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut values = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run(&(0u64..1_000_000,), |(x,)| {
                values.push(x);
                Ok(())
            });
            seen.push(values);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
