//! Vendored stand-in for [`proptest`](https://proptest-rs.github.io/proptest)
//! (the build environment has no network access).
//!
//! Implements the subset the workspace's property suites use: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_shuffle`, range and tuple strategies, [`collection::vec`],
//! [`strategy::Just`], `prop_assert!` / `prop_assert_eq!` / `prop_assume!`,
//! and [`test_runner::ProptestConfig`] / [`test_runner::TestRunner`].
//!
//! Differences from upstream, chosen deliberately for CI determinism:
//!
//! * Case generation is **fully deterministic**: every test function runs the
//!   same fixed-seed sequence on every machine. There is no persistence, so no
//!   `proptest-regressions/` files are ever written.
//! * There is **no shrinking** — a failing case reports the raw input.
//! * `PROPTEST_CASES` (environment) overrides the configured case count, so
//!   CI can bound suite runtime without touching test code.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Inside a `#[cfg(test)]` module each function carries `#[test]` as usual;
/// without it the macro just declares a plain function running the property,
/// as here:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(&($($strategy,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fails the current case (with an optional formatted message) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case (generating a replacement) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
