//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// A size specification for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange { min: range.start, max: range.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        let (min, max) = range.into_inner();
        assert!(min <= max, "empty size range");
        SizeRange { min, max: max + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange { min: len, max: len + 1 }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
