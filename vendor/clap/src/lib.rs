//! Vendored placeholder for [`clap`](https://crates.io/crates/clap).
//!
//! The build environment has no network access, so real clap cannot be
//! fetched. The `psr` CLI deliberately parses its arguments by hand (see
//! `crates/cli/src/args.rs`); this stub only keeps the workspace dependency
//! set aligned with the planned manifest and offers a tiny flag-splitting
//! helper for future tools.

/// A parsed flag/value view over raw arguments: `--name value` pairs plus
/// bare `--switch`es and positional arguments, in order of appearance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawArgs {
    /// `--flag value` pairs (flag names keep their leading dashes).
    pub options: Vec<(String, String)>,
    /// Flags that appeared without a following value.
    pub switches: Vec<String>,
    /// Non-flag arguments.
    pub positional: Vec<String>,
}

impl RawArgs {
    /// Splits raw arguments into flags, switches, and positionals. A token
    /// starting with `--` consumes the next token as its value unless that
    /// token is itself a flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = RawArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(token) = iter.next() {
            if token.starts_with("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        parsed.options.push((token, value));
                    }
                    _ => parsed.switches.push(token),
                }
            } else {
                parsed.positional.push(token);
            }
        }
        parsed
    }

    /// Returns the last value given for `flag` (with or without dashes).
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        let want = flag.trim_start_matches('-');
        self.options
            .iter()
            .rev()
            .find(|(name, _)| name.trim_start_matches('-') == want)
            .map(|(_, value)| value.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::RawArgs;

    #[test]
    fn splits_flags_switches_and_positionals() {
        let args = ["run", "--scale", "0.5", "--fast", "--seed", "7", "extra"].map(String::from);
        let parsed = RawArgs::parse(args);
        assert_eq!(parsed.positional, vec!["run", "extra"]);
        assert_eq!(parsed.switches, vec!["--fast"]);
        assert_eq!(parsed.value_of("scale"), Some("0.5"));
        assert_eq!(parsed.value_of("--seed"), Some("7"));
        assert_eq!(parsed.value_of("missing"), None);
    }
}
