//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` stand-in.
//!
//! Implemented with a hand-rolled token walk (no `syn`/`quote` — the build
//! has no network). Supports exactly the shapes the workspace uses:
//!
//! * structs with named fields (any visibility, any generics-free type),
//! * enums whose variants are all unit variants (e.g. `Direction`).
//!
//! Anything else produces a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (field-by-field to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (field-by-field from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum with only unit variants.
    Enum { name: String, variants: Vec<String> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let shape = match parse(input) {
        Ok(shape) => shape,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = match (&shape, mode) {
        (Shape::Struct { name, fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Struct { name, fields }, Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         value.get_field({f:?})?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum { name, variants }, Mode::Deserialize) => {
            let arms: String =
                variants.iter().map(|v| format!("{v:?} => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> \
                         ::core::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str()? {{\n\
                             {arms}\n\
                             other => Err(::serde::Error::new(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Parses the derive input into a [`Shape`].
fn parse(input: TokenStream) -> Result<Shape, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, doc comments) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracket group
            }
            Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                tokens.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(word)) => word.to_string(),
        other => return Err(format!("expected a type name, found {other:?}")),
    };
    // Reject generics: the workspace derives only concrete types.
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("serde derive (vendored) does not support generics on `{name}`"));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(_)) => {
            return Err(format!("serde derive (vendored): `{name}` must use named fields"));
        }
        other => return Err(format!("expected a braced body for `{name}`, found {other:?}")),
    };
    match kind.as_str() {
        "struct" => Ok(Shape::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Shape::Enum { name, variants: parse_unit_variants(body)? }),
        other => Err(format!("cannot derive serde traits for `{other} {name}`")),
    }
}

/// Extracts field names from `name: Type, ...` (attributes/visibility allowed).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(word)) => word.to_string(),
            other => return Err(format!("expected a field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        // Consume the type: everything until a top-level comma. Angle-bracket
        // depth must be tracked so `Vec<(u32, f64)>`'s comma is not a split.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Extracts variant names, requiring every variant to be a unit variant.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes (`#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let variant = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(word)) => word.to_string(),
            other => return Err(format!("expected a variant name, found {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => {
                return Err(format!(
                    "serde derive (vendored) supports only unit enum variants; \
                     `{variant}` is followed by {other:?}"
                ));
            }
        }
    }
    Ok(variants)
}
