//! Vendored stand-in for [`bytes`](https://crates.io/crates/bytes) (the
//! build environment has no network access).
//!
//! Implements the subset the graph snapshot format uses: [`BytesMut`] as an
//! append-only builder with little-endian `put_*` methods, frozen into a
//! cheaply-cloneable [`Bytes`] cursor with `get_*` readers. Unlike upstream
//! there is no zero-copy view sharing — `slice` copies — which is fine for
//! the snapshot sizes involved.

use std::sync::Arc;

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads exactly `dest.len()` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `dest.len()` bytes remain.
    fn copy_to_slice(&mut self, dest: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32) {
        self.put_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64) {
        self.put_slice(&value.to_le_bytes());
    }
}

/// Immutable, cheaply-cloneable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Cursor: index of the next unread byte.
    pos: usize,
}

impl Bytes {
    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the given sub-range (relative to the unread region) into a new
    /// buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(self.as_ref()[range].to_vec())
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into(), pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(dest.len() <= self.remaining(), "copy_to_slice past end of Bytes");
        dest.copy_from_slice(&self.data[self.pos..self.pos + dest.len()]);
        self.pos += dest.len();
    }
}

/// Growable byte buffer, frozen into [`Bytes`] when building is done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"PSRG");
        buf.put_u16_le(1);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 4 + 2 + 1 + 4 + 8);
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"PSRG");
        assert_eq!(bytes.get_u16_le(), 1);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 3);
        assert!(bytes.is_empty());
    }

    #[test]
    fn slice_is_relative_to_unread_region() {
        let mut bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bytes.get_u8(), 0);
        let rest = bytes.slice(0..bytes.len() - 1);
        assert_eq!(rest.to_vec(), vec![1, 2, 3, 4]);
    }
}
