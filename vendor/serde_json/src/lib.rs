//! Vendored stand-in for [`serde_json`] (the build has no network access).
//!
//! Provides the three entry points the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — over the vendored `serde` [`Value`]
//! tree. Numbers round-trip: floats are printed with Rust's shortest
//! round-trip formatting, and integral floats re-parse as integers that every
//! numeric [`Deserialize`] impl accepts.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and rebuilds a typed value.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    T::deserialize(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 is the shortest round-trip representation.
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; match upstream serde_json.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, v, d| {
                write_value(o, v, indent, d)
            })
        }
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, ('{', '}'), |o, (k, v), d| {
                write_json_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, v, indent, d);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(brackets.1);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => {
                Err(Error::new(format!("unexpected {:?} at byte {}", other as char, self.pos)))
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over the longest escape-free UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                other => {
                    return Err(Error::new(format!(
                        "unterminated or control character in string: {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let escape = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match escape {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'u' => {
                let high = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&high) {
                    // Surrogate pair.
                    if !self.eat_literal("\\u") {
                        return Err(Error::new("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    high
                };
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| Error::new(format!("invalid code point {code:#x}")))?,
                );
            }
            other => return Err(Error::new(format!("unknown escape \\{}", other as char))),
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("non-ASCII in \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        name: String,
        count: u64,
        ratio: f64,
        flags: Vec<bool>,
        pairs: Vec<(u32, f64)>,
        note: Option<String>,
    }

    fn sample() -> Sample {
        Sample {
            name: "wiki \"vote\"\n".to_owned(),
            count: 123_456_789_012,
            ratio: 0.6180339887498949,
            flags: vec![true, false],
            pairs: vec![(1, 0.5), (7, 2.0)],
            note: None,
        }
    }

    #[test]
    fn round_trips_compact() {
        let s = sample();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<Sample>(&json).unwrap(), s);
    }

    #[test]
    fn round_trips_pretty() {
        let s = sample();
        let json = to_string_pretty(&s).unwrap();
        assert!(json.contains("\n  \"name\""), "pretty output is indented: {json}");
        assert_eq!(from_str::<Sample>(&json).unwrap(), s);
    }

    #[test]
    fn integral_floats_survive() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct F {
            x: f64,
        }
        let json = to_string(&F { x: 1.0 }).unwrap();
        assert_eq!(from_str::<F>(&json).unwrap(), F { x: 1.0 });
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
        assert!(from_str::<u32>("-5").is_err());
        assert!(from_str::<String>("\"\\q\"").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""\u00e9\ud83d\ude00""#).unwrap(), "é😀");
    }
}
