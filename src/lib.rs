//! Workspace façade for the reproduction of **"Personalized Social
//! Recommendations — Accurate or Private?"** (Machanavajjhala, Korolova,
//! Das Sarma; PVLDB 4(7), 2011).
//!
//! This root package exists to own the cross-crate integration suites in
//! `tests/` and the runnable `examples/`; the implementation lives in the
//! `psr-*` crates, re-exported here for one-import convenience:
//!
//! | Crate | Layer |
//! |---|---|
//! | [`graph`] | CSR graph substrate, algorithms, IO |
//! | [`gen`] | random graph generators (ER, BA, WS, configuration) |
//! | [`datasets`] | paper-scale presets (Wikipedia vote, Twitter) and toys |
//! | [`utility`] | §4 utility functions and sensitivity bounds |
//! | [`privacy`] | §5 mechanisms (Laplace, Exponential, smoothing) + audits |
//! | [`bounds`] | §6 lower-bound theorems |
//! | [`core`] | §7 experiment pipeline, figures, serving API |

pub use psr_bounds as bounds;
pub use psr_core as core;
pub use psr_datasets as datasets;
pub use psr_gen as gen;
pub use psr_graph as graph;
pub use psr_privacy as privacy;
pub use psr_utility as utility;
