//! The paper's in-text numeric claims (E7, E10, E11 in DESIGN.md),
//! re-derived from our implementation.
//!
//! Exact §7.2 percentages depend on the authors' graphs; on the matched
//! synthetic stand-ins we assert the *shape*: who wins, by roughly what
//! factor, and where the cliffs fall (DESIGN.md §3).

use psr_bounds::corollary1_accuracy_upper_bound;
use psr_bounds::theorems::{theorem1_eps_lower_asymptotic, theorem2_eps_lower_asymptotic};
use psr_core::figures::{fig1a, fig1b, FigureConfig};
use psr_core::AccuracyCdf;
use psr_core::{run_experiment, ExperimentConfig};
use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_utility::CommonNeighbors;

/// §4.2: "for a differential privacy guarantee of 0.1, no algorithm can
/// guarantee an accuracy better than 0.46" at n=4·10⁸, k=100, t=150.
#[test]
fn worked_example_of_section_4_2() {
    let bound = corollary1_accuracy_upper_bound(0.1, 150, 400_000_000, 100, 0.99);
    assert!(bound < 0.46, "bound {bound}");
    assert!(bound > 0.45, "bound {bound} (paper: ≈ 0.46)");
}

/// §4.2 (Theorem 1 example): max degree = log n ⇒ no 0.24-DP constant-
/// accuracy algorithm; §5.1 (Theorem 2 example): common neighbours at
/// d_r = log n ⇒ at best 1.0-DP.
#[test]
fn theorem_examples_from_sections_4_and_5() {
    assert!(theorem1_eps_lower_asymptotic(1.0) > 0.24);
    let n = 1_000_000usize;
    let d_r = (n as f64).ln().round() as usize;
    let eps = theorem2_eps_lower_asymptotic(n, d_r);
    assert!(eps > 0.9 && eps < 1.1, "Theorem 2 example pins ε ≈ 1, got {eps}");
}

/// §7.2, Wiki at ε = 0.5: "the Exponential mechanism achieves less than
/// 0.1 accuracy for 60% of the nodes"; at ε = 1 the figure improves.
/// Shape assertions on the matched synthetic graph.
#[test]
fn wiki_starvation_claims() {
    // Full scale: starvation is a ratio-to-n effect and vanishes on small
    // graphs (the 2-hop neighbourhood covers too much of the graph).
    let fig = fig1a(&FigureConfig::smoke(1.0, 41));
    let at = |label: &str, x: f64| -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .unwrap()
            .1
    };
    let strict_starved = at("Exponential ε=0.5", 0.1);
    let lenient_starved = at("Exponential ε=1", 0.1);
    // A large fraction is starved at ε = 0.5 (paper: 60%; the synthetic
    // stand-in starves more because preferential attachment has lower
    // clustering than the real vote graph — EXPERIMENTS.md E1).
    assert!(strict_starved > 0.5, "ε=0.5 starvation {strict_starved}");
    assert!(lenient_starved < strict_starved, "ε=1 must starve fewer nodes");
    // Theoretical bound: at least some sizeable fraction cannot exceed 0.4
    // accuracy at ε = 0.5 (paper: ≥ 50%).
    let bound_capped = at("Theor. Bound ε=0.5", 0.4);
    assert!(bound_capped > 0.25, "bound caps {bound_capped} of nodes below 0.4");
}

/// §7.2, Twitter at ε = 1: "98% of nodes will receive recommendations of
/// accuracy less than 0.01 … performance improves only marginally even
/// for ε = 3".
#[test]
fn twitter_starvation_claims() {
    // ε = 3 starvation needs enough zero-utility mass relative to e^{3·u};
    // below ~0.2 scale the effect washes out.
    let fig = fig1b(&FigureConfig::smoke(0.3, 43));
    let at = |label: &str, x: f64| -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == label)
            .unwrap()
            .points
            .iter()
            .find(|p| (p.0 - x).abs() < 1e-9)
            .unwrap()
            .1
    };
    let eps1 = at("Exponential ε=1", 0.1);
    let eps3 = at("Exponential ε=3", 0.1);
    assert!(eps1 > 0.9, "paper: ~98% below 0.01 at ε=1; got {eps1} below 0.1");
    assert!(eps3 > 0.75, "even ε=3 leaves most starved; got {eps3}");
    assert!(eps3 <= eps1 + 1e-9, "leniency can only help");
}

/// §7.2 takeaway (iii): "for a large fraction of nodes, the accuracy
/// achieved by the mechanisms is close to the best possible" — sharpest
/// on the Twitter-like graph, where both the mechanism and the ceiling sit
/// near zero for almost everyone.
#[test]
fn mechanism_close_to_bound_for_many_nodes() {
    let (graph, _) = twitter_like(PresetConfig::scaled(0.3, 47)).unwrap();
    let result = run_experiment(
        &graph,
        &CommonNeighbors,
        &ExperimentConfig {
            epsilon: 1.0,
            target_fraction: 0.01,
            eval_laplace: false,
            ..Default::default()
        },
    );
    let close = result
        .evaluations
        .iter()
        .filter(|e| e.accuracy_bound - e.accuracy_exponential < 0.2)
        .count();
    let frac = close as f64 / result.evaluations.len() as f64;
    assert!(frac > 0.7, "only {frac:.2} of nodes within 0.2 of the ceiling");
}

/// Degree–privacy correlation behind §7.2's "least connected nodes"
/// paragraph: accuracy at ε = 0.5 grows with target degree in aggregate.
#[test]
fn least_connected_nodes_are_most_starved() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.10, 53)).unwrap();
    let result = run_experiment(
        &graph,
        &CommonNeighbors,
        &ExperimentConfig { epsilon: 0.5, eval_laplace: false, ..Default::default() },
    );
    let (mut low, mut high) = (Vec::new(), Vec::new());
    let median_degree = {
        let mut ds: Vec<usize> = result.evaluations.iter().map(|e| e.degree).collect();
        ds.sort_unstable();
        ds[ds.len() / 2]
    };
    for e in &result.evaluations {
        if e.degree <= median_degree {
            low.push(e.accuracy_exponential);
        } else {
            high.push(e.accuracy_exponential);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&high) > mean(&low),
        "high-degree mean {} should beat low-degree mean {}",
        mean(&high),
        mean(&low)
    );
}

/// Footnote 10: targets with all-zero utility are dropped, and on sparse
/// directed graphs that fraction is visible but minor at ε-irrelevant
/// levels.
#[test]
fn all_zero_targets_are_dropped() {
    let (graph, _) = twitter_like(PresetConfig::scaled(0.02, 59)).unwrap();
    // ~2.3% of this graph's nodes are all-zero sinks; sample a quarter of the
    // nodes so the expected number of dropped targets (~11) is far enough
    // from zero that the assertion holds for any seed stream.
    let result = run_experiment(
        &graph,
        &CommonNeighbors,
        &ExperimentConfig {
            epsilon: 1.0,
            target_fraction: 0.25,
            eval_laplace: false,
            ..Default::default()
        },
    );
    assert!(result.targets_dropped > 0, "directed PA graphs have sink nodes");
    assert!(result.evaluations.len() > result.targets_dropped, "most targets usable");
}

/// Accuracy CDF sanity across both graphs: every mechanism accuracy sits
/// in [0,1], and the Laplace–Exponential agreement holds at scale
/// (§7.2 takeaway (ii), asserted here with MC slack).
#[test]
fn laplace_matches_exponential_at_scale() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.06, 61)).unwrap();
    let result = run_experiment(
        &graph,
        &CommonNeighbors,
        &ExperimentConfig {
            epsilon: 1.0,
            target_fraction: 0.05,
            laplace_trials: 600,
            ..Default::default()
        },
    );
    let exp = AccuracyCdf::new(result.exponential_accuracies());
    let lap = AccuracyCdf::new(result.laplace_accuracies());
    assert!((exp.mean() - lap.mean()).abs() < 0.03, "means {} vs {}", exp.mean(), lap.mean());
    assert!((exp.quantile(0.5) - lap.quantile(0.5)).abs() < 0.08);
}
