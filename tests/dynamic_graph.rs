//! Differential conformance of the dynamic-graph subsystem, end to end.
//!
//! The epoch model's whole correctness story is one sentence: *a
//! `DeltaGraph` at edge set `E` is indistinguishable from a CSR rebuilt
//! from scratch at `E`* — through raw reads, through every bundled
//! utility function, and through full serving outcomes (which layer RNG
//! streams, caching and ε budgets on top). These suites drive random
//! edge-mutation streams (psr-gen) over random Barabási–Albert,
//! Erdős–Rényi and Watts–Strogatz bases, in both directions where the
//! generator supports them, and assert bit-identity everywhere.
//!
//! Each property test runs its configured case count *per generator
//! configuration* (five: BA/ER × directed/undirected, WS undirected), so
//! one full run covers `5 × cases` random edit sequences. The serving
//! comparison also cross-checks [`Epoch::dirty_targets`]: every target
//! whose utility state actually changed must be declared dirty
//! (soundness of the invalidation-radius optimisation).

use std::sync::Arc;

use proptest::prelude::*;
use psr_core::serving::{BatchRequest, RecommendationService, ServiceConfig};
use psr_gen::{
    ba_directed, ba_undirected, edge_stream, gnm, rng_from_seed, split_seed, watts_strogatz,
    BaParams, StreamParams,
};
use psr_graph::algo::common_neighbor_counts;
use psr_graph::{DeltaGraph, Direction, EdgeMutation, Graph, GraphView, MutableGraph};
use psr_utility::{
    extra::{AdamicAdar, Jaccard, PreferentialAttachment},
    CandidateSet, CommonNeighbors, PersonalizedPageRank, UtilityFunction, WeightedPaths,
};

const N: usize = 48;

/// The generator matrix: all three families, both directions where the
/// family supports them (Watts–Strogatz lattices are undirected).
const CONFIGS: [(&str, u8); 5] =
    [("ba-undirected", 0), ("ba-directed", 1), ("er-undirected", 2), ("er-directed", 3), ("ws", 4)];

fn generate_base(kind: u8, seed: u64) -> Graph {
    let mut rng = rng_from_seed(split_seed(seed, kind as u64));
    match kind {
        0 => ba_undirected(BaParams { n: N, target_edges: 2 * N }, &mut rng).unwrap(),
        1 => ba_directed(BaParams { n: N, target_edges: 2 * N }, &mut rng).unwrap(),
        2 => gnm(N, 2 * N, Direction::Undirected, &mut rng).unwrap(),
        3 => gnm(N, 2 * N, Direction::Directed, &mut rng).unwrap(),
        4 => watts_strogatz(N, 4, 0.2, &mut rng).unwrap(),
        other => unreachable!("unknown generator kind {other}"),
    }
}

/// Base + mutation batch + independently rebuilt CSR at the mutated edge
/// set (via the reference `MutableGraph`, *not* `DeltaGraph::compact`).
fn mutated_pair(kind: u8, seed: u64, events: usize) -> (Graph, Vec<EdgeMutation>, Graph) {
    let base = generate_base(kind, seed);
    let mut rng = rng_from_seed(split_seed(seed, 100 + kind as u64));
    let stream = edge_stream(&base, StreamParams { events, insert_fraction: 0.6 }, &mut rng);
    let mutations: Vec<EdgeMutation> = stream.iter().map(|e| e.mutation).collect();
    let mut reference = MutableGraph::from(&base);
    for m in &mutations {
        match m.op {
            psr_graph::MutationOp::Insert => reference.add_edge(m.u, m.v).unwrap(),
            psr_graph::MutationOp::Delete => reference.remove_edge(m.u, m.v).unwrap(),
        }
    }
    (base, mutations, reference.freeze())
}

/// All six bundled utility functions.
fn bundled_utilities() -> Vec<Box<dyn UtilityFunction>> {
    vec![
        Box::new(CommonNeighbors),
        Box::new(WeightedPaths::paper(0.05)),
        Box::new(PersonalizedPageRank::default()),
        Box::new(AdamicAdar),
        Box::new(Jaccard),
        Box::new(PreferentialAttachment),
    ]
}

/// A deterministic spread of request targets.
fn request_targets() -> Vec<u32> {
    (0..N as u32).step_by(5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reads, kernels and every bundled utility agree between the
    /// overlay and the rebuilt CSR, for every generator configuration.
    #[test]
    fn overlay_matches_rebuild_for_reads_and_utilities(
        seed in 0u64..1_000_000,
        events in 10usize..40,
    ) {
        for (name, kind) in CONFIGS {
            let (base, mutations, rebuilt) = mutated_pair(kind, seed, events);
            let mut delta = DeltaGraph::new(base);
            for m in &mutations {
                delta.apply(m).unwrap();
            }

            prop_assert_eq!(delta.num_edges(), rebuilt.num_edges(), "{}", name);
            for v in rebuilt.nodes() {
                prop_assert_eq!(
                    GraphView::neighbors(&delta, v), rebuilt.neighbors(v),
                    "{} neighbors({})", name, v
                );
                prop_assert_eq!(
                    common_neighbor_counts(&delta, v),
                    common_neighbor_counts(&rebuilt, v),
                    "{} C(., {})", name, v
                );
            }
            prop_assert_eq!(delta.compact(), rebuilt.clone(), "{} compaction", name);

            for utility in bundled_utilities() {
                for target in rebuilt.nodes() {
                    prop_assert_eq!(
                        CandidateSet::for_target(&delta, target),
                        CandidateSet::for_target(&rebuilt, target),
                        "{} candidates of {}", name, target
                    );
                    prop_assert_eq!(
                        utility.utilities_for(&delta, target),
                        utility.utilities_for(&rebuilt, target),
                        "{} {} utilities of {}", name, utility.name(), target
                    );
                }
            }
        }
    }

    /// Full serving outcomes — RNG streams, caches, budgets included —
    /// agree between a mutated service (warm caches, selective
    /// invalidation) and a fresh service over the rebuilt CSR; and the
    /// epoch's dirty set covers every target whose state truly changed.
    #[test]
    fn serving_outcomes_match_rebuild_after_mutations(
        seed in 0u64..1_000_000,
        events in 10usize..30,
    ) {
        let requests: Vec<BatchRequest> =
            request_targets().into_iter().map(|target| BatchRequest { target, k: 2 }).collect();
        let config = ServiceConfig {
            budget_per_target: f64::INFINITY,
            threads: Some(2),
            ..Default::default()
        };

        for (name, kind) in CONFIGS {
            let (base, mutations, rebuilt) = mutated_pair(kind, seed, events);
            let base = Arc::new(base);

            // Every bounded-invalidation-radius utility is probed, so
            // each declared radius (CN/AA: 1, WP: max_len−1, Jaccard: 2)
            // has its soundness cross-checked below.
            for utility_kind in 0..4u8 {
                let make_utility = || -> Box<dyn UtilityFunction> {
                    match utility_kind {
                        0 => Box::new(CommonNeighbors),
                        1 => Box::new(WeightedPaths::paper(0.05)),
                        2 => Box::new(AdamicAdar),
                        _ => Box::new(Jaccard),
                    }
                };

                let mutated = RecommendationService::new(
                    Arc::clone(&base), make_utility(), config,
                );
                // Warm every request target's cache pre-mutation, so the
                // comparison exercises selective invalidation rather than
                // a cold recompute.
                let _ = mutated.serve_batch(&requests, split_seed(seed, 7));
                let epoch = mutated.apply_mutations(&mutations).unwrap();
                prop_assert_eq!(epoch.version, 1, "{}", name);

                // Soundness of the dirty set: any target whose candidate
                // set or utility vector changed must be declared dirty.
                let probe = make_utility();
                for target in rebuilt.nodes() {
                    let changed = CandidateSet::for_target(base.as_ref(), target)
                        != CandidateSet::for_target(&rebuilt, target)
                        || probe.utilities_for(base.as_ref(), target)
                            != probe.utilities_for(&rebuilt, target);
                    if changed {
                        prop_assert!(
                            epoch.dirty_targets.binary_search(&target).is_ok(),
                            "{} {}: target {} changed but was not dirtied",
                            name, probe.name(), target
                        );
                    }
                }

                let fresh = RecommendationService::new(
                    rebuilt.clone(), make_utility(), config,
                );
                prop_assert_eq!(
                    mutated.sensitivity(), fresh.sensitivity(),
                    "{} recalibrated sensitivity", name
                );
                let serve_seed = split_seed(seed, 11);
                prop_assert_eq!(
                    mutated.serve_batch(&requests, serve_seed),
                    fresh.serve_batch(&requests, serve_seed),
                    "{} {} serving outcomes", name, probe.name()
                );
            }
        }
    }
}

/// The five generator configurations really produce what the matrix
/// promises (guards the conformance suites' coverage claim).
#[test]
fn generator_matrix_covers_three_families_and_both_directions() {
    let mut directed = 0;
    for (name, kind) in CONFIGS {
        let g = generate_base(kind, 42);
        assert_eq!(g.num_nodes(), N, "{name}");
        assert!(g.num_edges() > N / 2, "{name} too sparse to exercise anything");
        if g.is_directed() {
            directed += 1;
        }
        // And streams over it replay cleanly.
        let mut rng = rng_from_seed(1);
        let stream = edge_stream(&g, StreamParams::default(), &mut rng);
        let mut delta = DeltaGraph::new(g);
        for event in &stream {
            delta.apply(&event.mutation).unwrap();
        }
    }
    assert_eq!(directed, 2, "BA and ER must contribute directed cases");
}
