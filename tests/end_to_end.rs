//! End-to-end integration: datasets → utilities → mechanisms → bounds →
//! figures, at reduced scale.

use psr_core::figures::{fig1a, fig1b, fig2a, fig2c, FigureConfig};
use psr_core::report::render_figure;
use psr_core::{Recommender, RecommenderConfig};
use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_privacy::{ExponentialMechanism, LaplaceMechanism};
use psr_utility::{CommonNeighbors, WeightedPaths};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn full_pipeline_on_scaled_wiki() {
    let (graph, meta) = wiki_vote_like(PresetConfig::scaled(0.08, 11)).unwrap();
    assert!(meta.num_nodes > 500);
    let rec = Recommender::new(
        graph.clone(),
        Box::new(CommonNeighbors),
        Box::new(ExponentialMechanism::paper()),
        RecommenderConfig { epsilon: 1.0, ..Default::default() },
    );
    let mut r = rng(1);
    let mut served = 0;
    for target in (0..graph.num_nodes() as u32).step_by(97) {
        if let Some(v) = rec.recommend(target, &mut r) {
            assert_ne!(v, target);
            assert!(!graph.has_edge(target, v));
            served += 1;
        }
    }
    assert!(served > 3, "should serve most sampled targets");
}

#[test]
fn full_pipeline_on_scaled_twitter_directed() {
    let (graph, _) = twitter_like(PresetConfig::scaled(0.02, 11)).unwrap();
    assert!(graph.is_directed());
    let rec = Recommender::new(
        graph,
        Box::new(WeightedPaths::paper(0.005)),
        Box::new(LaplaceMechanism { trials: 100 }),
        RecommenderConfig { epsilon: 2.0, ..Default::default() },
    );
    let mut r = rng(2);
    // Node 0 is the forced hub; it must have candidates and a valid draw.
    let v = rec.recommend(0, &mut r);
    assert!(v.is_some());
}

#[test]
fn figures_have_paper_structure_and_are_deterministic() {
    let cfg = FigureConfig::smoke(0.05, 17);
    let a1 = fig1a(&cfg);
    let a2 = fig1a(&cfg);
    assert_eq!(a1, a2, "figures must be seed-deterministic");

    for fig in [a1, fig2a(&cfg)] {
        for s in &fig.series {
            assert_eq!(s.points.len(), 11, "paper grid is 0.0..1.0 step 0.1");
            assert!(s.points.windows(2).all(|w| w[1].1 >= w[0].1), "CDFs are monotone");
            assert!((s.points[10].1 - 1.0).abs() < 1e-12);
        }
        let text = render_figure(&fig);
        assert!(text.contains("Theor. Bound"));
    }
}

#[test]
fn twitter_figure_shows_harsher_tradeoff_than_wiki() {
    // The paper's headline comparison: G_T fares far worse than G_WV at
    // the same ε because utility mass is thinner relative to n.
    let cfg = FigureConfig::smoke(0.03, 23);
    let wiki = fig1a(&cfg);
    let twitter = fig1b(&cfg);
    // Compare "Exponential ε=1" at accuracy ≤ 0.1: the fraction of starved
    // nodes must be much larger on the Twitter-like graph.
    let frac_below = |fig: &psr_core::figures::FigureResult, label: &str| -> f64 {
        let s = fig.series.iter().find(|s| s.label == label).expect("series exists");
        s.points.iter().find(|p| (p.0 - 0.1).abs() < 1e-9).unwrap().1
    };
    let wiki_frac = frac_below(&wiki, "Exponential ε=1");
    let twitter_frac = frac_below(&twitter, "Exponential ε=1");
    assert!(
        twitter_frac > wiki_frac,
        "twitter {twitter_frac} should be starved more than wiki {wiki_frac}"
    );
    assert!(twitter_frac > 0.8, "paper reports ~98% starved at ε=1, got {twitter_frac}");
}

#[test]
fn fig2c_low_degree_nodes_suffer() {
    let fig = fig2c(&FigureConfig::smoke(0.08, 29));
    let exp = &fig.series[0];
    // Mean accuracy in the lowest degree bin is below the best bin by a
    // clear margin (Fig. 2(c)'s message).
    let lowest = exp.points.first().unwrap().1;
    let best = exp.points.iter().map(|p| p.1).fold(0.0f64, f64::max);
    assert!(best > lowest, "degree trend missing: lowest {lowest} best {best}");
}

#[test]
fn experiment_results_serialise_to_json() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 31)).unwrap();
    let result = psr_core::run_experiment(
        &graph,
        &CommonNeighbors,
        &psr_core::ExperimentConfig {
            target_fraction: 0.05,
            eval_laplace: false,
            ..Default::default()
        },
    );
    let json = result.to_json();
    let back: psr_core::ExperimentResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back, result);
    assert!(json.contains("accuracy_exponential"));
}

// ---------------------------------------------------------------------------
// Slow tier: scaled-preset runs, excluded from `cargo test -q`.
// Run with `cargo test --release -- --ignored` (see tests/README.md).
// ---------------------------------------------------------------------------

/// Figure 1(a) at the paper's full Wikipedia-vote scale (7,115 nodes, 10%
/// targets): the starvation cliff the paper reports must appear — at ε = 1
/// a majority of targets still sit below 0.5 accuracy.
#[test]
#[ignore = "slow: full-scale wiki preset (~minutes); run with -- --ignored"]
fn full_scale_wiki_fig1a_shows_starvation() {
    let fig = fig1a(&FigureConfig { scale: 1.0, seed: 42, ..Default::default() });
    let eps1 = fig.series.iter().find(|s| s.label == "Exponential ε=1").expect("ε=1 series exists");
    let frac_below_half = eps1.points.iter().find(|p| (p.0 - 0.5).abs() < 1e-9).unwrap().1;
    assert!(
        frac_below_half > 0.5,
        "full-scale wiki: {frac_below_half} of targets below 0.5 accuracy at ε=1"
    );
}

/// The full experiment protocol with Laplace Monte-Carlo enabled at a
/// moderate Twitter scale: both mechanisms agree in the mean (§7.2
/// takeaway (ii)) outside toy sizes.
#[test]
#[ignore = "slow: Laplace Monte-Carlo at 30% twitter scale; run with -- --ignored"]
fn scaled_twitter_laplace_agrees_with_exponential() {
    let (graph, _) = twitter_like(PresetConfig::scaled(0.3, 42)).unwrap();
    let result = psr_core::run_experiment(
        &graph,
        &CommonNeighbors,
        &psr_core::ExperimentConfig {
            target_fraction: 0.01,
            laplace_trials: 1000,
            ..Default::default()
        },
    );
    assert!(result.evaluations.len() > 100);
    let exp = psr_core::AccuracyCdf::new(result.exponential_accuracies());
    let lap = psr_core::AccuracyCdf::new(result.laplace_accuracies());
    assert!(
        (exp.mean() - lap.mean()).abs() < 0.02,
        "exp mean {} vs lap mean {}",
        exp.mean(),
        lap.mean()
    );
}
