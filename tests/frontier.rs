//! Frontier acceptance: the orchestrated privacy–utility sweep lab.
//!
//! One plan sweeping ≥ 2 mechanisms × ≥ 3 ε × ≥ 2 utilities × both
//! adjacency notions on the karate graph must measure every cell with a
//! theoretical bound, an achieved accuracy, an empirical ε̂ from the full
//! adversary panel and Clopper–Pearson error bars — and the assembled
//! `frontier.json` must be byte-identical across worker counts and
//! across a kill/resume boundary (the determinism contract of
//! `psr-frontier`'s per-cell seed streams and index-ordered reports).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use psr_frontier::{run_sweep, DatasetSpec, ExperimentPlan, FrontierReport, SweepOptions};

/// The acceptance grid: 1 dataset × 2 utilities × 2 adjacencies ×
/// (exponential at 3 ε + ε-free non-private) = 16 cells.
fn acceptance_plan() -> ExperimentPlan {
    ExperimentPlan {
        name: "acceptance".to_owned(),
        datasets: vec![DatasetSpec::karate()],
        mechanisms: vec!["exponential".to_owned(), "non-private".to_owned()],
        utilities: vec!["common-neighbors".to_owned(), "weighted-paths".to_owned()],
        adjacencies: vec!["edge".to_owned(), "node".to_owned()],
        epsilons: vec![0.3, 0.8, 2.0],
        trials_per_world: 8,
        ..ExperimentPlan::toy()
    }
}

/// A unique scratch path (no tempfile crate in the offline vendor set).
fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("psr-frontier-it-{tag}-{}-{n}.journal", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn acceptance_sweep_measures_every_cell_with_bounds_accuracy_and_error_bars() {
    let plan = acceptance_plan();
    let outcome = run_sweep(&plan, &SweepOptions::default()).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.total, 16, "2 utilities x 2 adjacencies x (3 eps + eps-free)");

    // Every axis combination the plan declares is measured.
    for utility in &plan.utilities {
        for adjacency in &plan.adjacencies {
            let exp_cells = outcome
                .results
                .iter()
                .filter(|c| {
                    c.spec.utility == *utility
                        && c.spec.adjacency == *adjacency
                        && c.spec.mechanism == "exponential"
                })
                .count();
            assert_eq!(exp_cells, plan.epsilons.len(), "{utility}/{adjacency}");
        }
    }

    for cell in &outcome.results {
        let id = format!(
            "{}/{}/{}/{:?}",
            cell.spec.utility, cell.spec.adjacency, cell.spec.mechanism, cell.spec.epsilon
        );
        // Theoretical ceiling: Corollary 1 for budgeted cells, trivial (1)
        // for the ε-free mechanism.
        assert!(
            cell.accuracy_bound.is_finite() && cell.accuracy_bound > 0.0,
            "{id}: bound {}",
            cell.accuracy_bound
        );
        if cell.spec.mechanism == "non-private" {
            assert_eq!(cell.accuracy_bound, 1.0, "{id}");
        }
        // Achieved accuracy with its Clopper–Pearson interval.
        let accuracy = cell.mean_accuracy.unwrap_or_else(|| panic!("{id}: no accuracy"));
        assert!((0.0..=1.0).contains(&accuracy), "{id}: accuracy {accuracy}");
        assert!(cell.scored_entries > 0, "{id}: nothing scored");
        let interval = cell.accuracy_interval.as_ref().unwrap_or_else(|| panic!("{id}"));
        assert!(
            0.0 <= interval.lower && interval.lower <= interval.upper && interval.upper <= 1.0,
            "{id}: accuracy interval [{}, {}]",
            interval.lower,
            interval.upper
        );
        // The full adversary panel, each with an empirical ε̂ and CP-backed
        // TPR/FPR error bars.
        assert_eq!(cell.adversaries.len(), 3, "{id}");
        for adversary in &cell.adversaries {
            let aid = format!("{id}/{}", adversary.adversary);
            assert!(
                adversary.empirical_epsilon.is_finite() && adversary.empirical_epsilon >= 0.0,
                "{aid}: bad empirical eps {}",
                adversary.empirical_epsilon
            );
            assert!(adversary.empirical_epsilon_lower >= 0.0, "{aid}");
            for (name, rate, interval) in [
                ("tpr", adversary.tpr, &adversary.tpr_interval),
                ("fpr", adversary.fpr, &adversary.fpr_interval),
            ] {
                assert!(
                    interval.lower <= rate && rate <= interval.upper,
                    "{aid}: {name} {rate} outside [{}, {}]",
                    interval.lower,
                    interval.upper
                );
            }
        }
    }

    // The report groups every workload and stays parseable.
    let report = FrontierReport::assemble(&plan, outcome.fingerprint, outcome.results);
    assert_eq!(report.recommendations.len(), 2 * 2 * 4, "one winner per workload group");
    assert_eq!(FrontierReport::from_json(&report.to_json()).unwrap(), report);
}

#[test]
fn frontier_json_is_byte_identical_across_worker_counts() {
    let plan = acceptance_plan();
    let one = run_sweep(&plan, &SweepOptions { threads: Some(1), ..Default::default() }).unwrap();
    let four = run_sweep(&plan, &SweepOptions { threads: Some(4), ..Default::default() }).unwrap();
    let report_one = FrontierReport::assemble(&plan, one.fingerprint, one.results);
    let report_four = FrontierReport::assemble(&plan, four.fingerprint, four.results);
    assert_eq!(report_one.to_json(), report_four.to_json());
}

#[test]
fn killed_sweep_resumes_to_a_byte_identical_report() {
    let plan = acceptance_plan();
    let path = scratch_path("resume");
    let _cleanup = Cleanup(path.clone());

    let uninterrupted = run_sweep(&plan, &SweepOptions::default()).unwrap();
    let reference =
        FrontierReport::assemble(&plan, uninterrupted.fingerprint, uninterrupted.results);

    // "Kill" after five cells (journalled, fsync'd), then re-invoke.
    let first = run_sweep(
        &plan,
        &SweepOptions {
            threads: Some(3),
            journal: Some(path.clone()),
            max_cells: Some(5),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!first.complete);
    assert_eq!(first.computed, 5);
    let second = run_sweep(
        &plan,
        &SweepOptions { threads: Some(2), journal: Some(path), ..Default::default() },
    )
    .unwrap();
    assert!(second.complete);
    assert_eq!(second.resumed, 5, "journalled cells must not be recomputed");
    let resumed = FrontierReport::assemble(&plan, second.fingerprint, second.results);
    assert_eq!(resumed.to_json(), reference.to_json(), "resume must be byte-identical");
}
