//! Backend-obliviousness: kernels, utilities and the serving stack must
//! produce bit-identical results whether the graph is backed by the
//! in-RAM CSR, the compressed `PSRZ` snapshot, or degree-balanced shards.
//!
//! The serving pipeline reads its base purely through
//! [`psr_graph::GraphView`], so a divergence here means a backend decodes
//! different adjacency than the CSR it was built from — exactly the class
//! of bug the compressed format's validators cannot catch (they prove
//! internal consistency, not equivalence).
//!
//! The `#[ignore]`d test is the ISSUE's acceptance run: the full-scale
//! Twitter-like preset and a LiveJournal-class R-MAT synthetic served end
//! to end through the compressed backend inside a documented memory
//! budget (`cargo test --release -- --ignored graph_backend`).

use std::sync::Arc;

use psr_core::serving::{BatchRequest, RecommendationService, ServiceConfig};
use psr_datasets::{livejournal_like_snapshot, twitter_like, wiki_vote_like, PresetConfig};
use psr_graph::algo::{common_neighbor_count, common_neighbor_counts};
use psr_graph::{CompressedCsr, Graph, GraphBackend, GraphView, NodeId, ShardedGraph};
use psr_utility::{CommonNeighbors, UtilityFunction, WeightedPaths};

fn wiki() -> Graph {
    wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap().0
}

/// The three backings of the same graph, plus the graph itself.
fn backings(graph: &Graph) -> (Arc<CompressedCsr>, Arc<ShardedGraph>) {
    let compressed =
        CompressedCsr::open_bytes(CompressedCsr::encode(graph, 4)).expect("fresh snapshot");
    let sharded = ShardedGraph::from_view(graph, 4);
    (Arc::new(compressed), Arc::new(sharded))
}

#[test]
fn kernels_agree_across_backends() {
    let graph = wiki();
    let (compressed, sharded) = backings(&graph);
    for v in graph.nodes().step_by(7) {
        let expect = common_neighbor_counts(&graph, v);
        assert_eq!(common_neighbor_counts(compressed.as_ref(), v), expect);
        assert_eq!(common_neighbor_counts(sharded.as_ref(), v), expect);
    }
    for (u, v) in [(0, 1), (3, 11), (40, 41), (5, 100)] {
        let expect = common_neighbor_count(&graph, u, v);
        assert_eq!(common_neighbor_count(compressed.as_ref(), u, v), expect);
        assert_eq!(common_neighbor_count(sharded.as_ref(), u, v), expect);
    }
}

#[test]
fn utilities_agree_across_backends() {
    let graph = wiki();
    let (compressed, sharded) = backings(&graph);
    let utilities: [Box<dyn UtilityFunction>; 2] =
        [Box::new(CommonNeighbors), Box::new(WeightedPaths::default())];
    for utility in &utilities {
        for target in (0..graph.num_nodes() as NodeId).step_by(211) {
            let expect = utility.utilities_for(&graph, target);
            assert_eq!(utility.utilities_for(compressed.as_ref(), target), expect);
            assert_eq!(utility.utilities_for(sharded.as_ref(), target), expect);
        }
    }
}

#[test]
fn serving_is_bit_identical_across_backends() {
    let graph = wiki();
    let (compressed, sharded) = backings(&graph);
    let requests: Vec<BatchRequest> = graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .step_by(5)
        .map(|target| BatchRequest { target, k: 3 })
        .collect();
    let service = |backend: GraphBackend| {
        RecommendationService::with_backend(
            backend,
            Box::new(CommonNeighbors),
            ServiceConfig { threads: Some(2), ..Default::default() },
        )
    };
    let csr = service(GraphBackend::from(graph));
    let expect = csr.serve_batch(&requests, 42);
    let via_compressed = service(GraphBackend::Compressed(Arc::clone(&compressed)));
    assert_eq!(via_compressed.backend_kind(), "compressed");
    assert_eq!(via_compressed.serve_batch(&requests, 42), expect);
    let via_sharded = service(GraphBackend::Sharded(sharded));
    assert_eq!(via_sharded.backend_kind(), "sharded");
    assert_eq!(via_sharded.serve_batch(&requests, 42), expect);
}

#[test]
fn compressed_serving_materialises_only_the_touched_working_set() {
    // The memory contract of the compressed backend: serving decodes (and
    // caches) at most the two-hop closure the requests actually read —
    // never the whole graph. A larger, sparser fixture than `wiki()` so
    // the closure is a strict subset.
    let graph = wiki_vote_like(PresetConfig::scaled(0.5, 2011)).unwrap().0;
    let compressed = Arc::new(CompressedCsr::open_bytes(CompressedCsr::encode(&graph, 4)).unwrap());
    // The two lowest-degree connected nodes keep the closure smallest (in
    // a scale-free graph even those reach hubs, so the closure is large —
    // the *bound* is what matters, not its size).
    let mut connected: Vec<NodeId> = graph.nodes().filter(|&v| graph.degree(v) > 0).collect();
    connected.sort_by_key(|&v| graph.degree(v));
    let requests: Vec<BatchRequest> =
        connected[..2].iter().map(|&target| BatchRequest { target, k: 2 }).collect();
    // CommonNeighbors reads each target, its neighbours, and *their*
    // neighbours: the union of two-hop closures bounds the decode cache.
    let mut closure = std::collections::HashSet::new();
    for request in &requests {
        closure.insert(request.target);
        for &v in graph.neighbors(request.target) {
            closure.insert(v);
            closure.extend(graph.neighbors(v).iter().copied());
        }
    }
    let service = RecommendationService::with_backend(
        GraphBackend::Compressed(Arc::clone(&compressed)),
        Box::new(CommonNeighbors),
        ServiceConfig { threads: Some(1), ..Default::default() },
    );
    for outcome in service.serve_batch(&requests, 9) {
        outcome.expect("connected wiki targets must serve");
    }
    let touched = compressed.cached_nodes();
    assert!(touched > 0, "serving must have decoded something");
    assert!(
        touched <= closure.len(),
        "{touched} nodes decoded, but the requests' two-hop closure holds only {}",
        closure.len()
    );
    assert!(
        closure.len() < compressed.num_nodes(),
        "fixture too dense for the bound to mean anything"
    );
    assert!(
        touched < compressed.num_nodes(),
        "serving two targets must not materialise the whole graph"
    );
}

/// The acceptance run (ignored: seconds of work at full scale, release
/// build recommended). Serves the full-scale Twitter-like preset and a
/// LiveJournal-class R-MAT synthetic end to end through the compressed
/// backend, asserting the memory budgets documented in
/// `crates/graph/README.md`: ≤ 8 MiB total footprint (snapshot + cache
/// spine + touched adjacency) for Twitter from a heap snapshot, ≤ 64 MiB
/// of heap for the mmap-served LiveJournal-class build.
#[test]
#[ignore]
fn full_scale_presets_serve_through_the_compressed_backend() {
    // --- Twitter-like at the paper's full scale, encoded in RAM --------
    let (graph, _) = twitter_like(PresetConfig::scaled(1.0, 2011)).unwrap();
    let compressed = Arc::new(CompressedCsr::open_bytes(CompressedCsr::encode(&graph, 8)).unwrap());
    let requests: Vec<BatchRequest> = graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .step_by(487)
        .map(|target| BatchRequest { target, k: 5 })
        .collect();
    assert!(requests.len() >= 100, "acceptance batch must be non-trivial");
    let service = RecommendationService::with_backend(
        GraphBackend::Compressed(Arc::clone(&compressed)),
        Box::new(CommonNeighbors),
        ServiceConfig { threads: Some(4), ..Default::default() },
    );
    let served =
        service.serve_batch(&requests, 1).into_iter().filter(|outcome| outcome.is_ok()).count();
    assert!(served * 2 > requests.len(), "most full-scale targets must serve");
    // Documented budget (crates/graph/README.md): snapshot + 16 B/node
    // cache spine + decoded lists of touched nodes, ≤ 8 MiB for the
    // full-scale Twitter preset. (The snapshot alone must also beat the
    // resident CSR; the spine is the price of O(1) cached reads and only
    // amortises on graphs with more arcs per node slot.)
    assert!(
        compressed.snapshot_bytes() < graph.resident_bytes(),
        "snapshot {} B must compress below the resident CSR ({} B)",
        compressed.snapshot_bytes(),
        graph.resident_bytes()
    );
    let footprint =
        compressed.snapshot_bytes() + compressed.cache_overhead_bytes() + compressed.cached_bytes();
    assert!(
        footprint < 8 << 20,
        "compressed serving footprint {footprint} B exceeds the documented 8 MiB budget"
    );
    assert!(
        compressed.cached_nodes() < compressed.num_nodes() / 4,
        "sampled serving must not materialise most of the graph"
    );
    drop(service);
    drop(graph);

    // --- LiveJournal-class synthetic, built out of core, served mmapped --
    let path =
        std::env::temp_dir().join(format!("psr-graph-backend-accept-{}.psrz", std::process::id()));
    let stats = livejournal_like_snapshot(
        PresetConfig::scaled(0.1, 2026),
        1 << 22, // 4 Mi-arc spill budget: the documented build-side cap
        8,
        &path,
    )
    .expect("out-of-core build");
    assert!(stats.num_nodes > 400_000, "LiveJournal-class scale");
    let lj = Arc::new(CompressedCsr::open_path(&path).expect("snapshot validates"));
    assert!(lj.is_mapped(), "file serving must be zero-copy mapped");
    let targets: Vec<BatchRequest> = (0..lj.num_nodes() as NodeId)
        .filter(|&v| lj.degree(v) > 0)
        .step_by(9_973)
        .map(|target| BatchRequest { target, k: 5 })
        .collect();
    let service = RecommendationService::with_backend(
        GraphBackend::Compressed(Arc::clone(&lj)),
        Box::new(CommonNeighbors),
        ServiceConfig { threads: Some(4), ..Default::default() },
    );
    let served =
        service.serve_batch(&targets, 2).into_iter().filter(|outcome| outcome.is_ok()).count();
    assert!(served * 2 > targets.len(), "most LiveJournal-class targets must serve");
    // Documented budget (crates/graph/README.md) for mmap-backed serving:
    // the heap holds only the cache spine + touched lists (the snapshot
    // itself is file-backed pages) — ≤ 64 MiB at this scale.
    let heap = lj.cache_overhead_bytes() + lj.cached_bytes();
    assert!(
        heap < 64 << 20,
        "mmap-serving heap working set {heap} B exceeds the documented 64 MiB budget"
    );
    assert!(
        lj.cached_nodes() < lj.num_nodes() / 10,
        "{} of {} nodes decoded for {} sampled targets",
        lj.cached_nodes(),
        lj.num_nodes(),
        targets.len()
    );
    let _ = std::fs::remove_file(&path);
}
