//! Daemon integration: the always-on ingestion loop over real preset
//! graphs — worker-count/queue/pacing invariance at scale, equivalence
//! with the one-shot serving path, bounded-queue backpressure, and the
//! kill/restart acceptance check on a journalled budget ledger.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use psr_core::serving::daemon::{multiplex, run_daemon, DaemonConfig, DaemonEvent};
use psr_core::serving::{BatchRequest, RecommendationService, ServeError, ServiceConfig};
use psr_core::{BudgetLedger, JournalLedger};
use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_gen::{
    edge_stream, request_stream, rng_from_seed, RequestEvent, RequestStreamParams, StreamEvent,
    StreamParams,
};
use psr_graph::Graph;
use psr_utility::CommonNeighbors;

fn wiki_graph() -> Graph {
    wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap().0
}

fn wiki_service(graph: Graph) -> RecommendationService {
    RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig { budget_per_target: f64::INFINITY, ..Default::default() },
    )
}

fn wiki_streams(graph: &Graph) -> (Vec<RequestEvent>, Vec<StreamEvent>) {
    let requests =
        request_stream(graph, RequestStreamParams { events: 120, k: 3 }, &mut rng_from_seed(31));
    let mutations = edge_stream(
        graph,
        StreamParams { events: 24, insert_fraction: 0.7 },
        &mut rng_from_seed(32),
    );
    (requests, mutations)
}

/// A unique scratch path (no tempfile crate in the offline vendor set).
fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("psr-daemon-it-{tag}-{}-{n}.journal", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn daemon_outcomes_are_invariant_to_workers_and_queue_capacity() {
    let graph = wiki_graph();
    let (requests, mutations) = wiki_streams(&graph);
    let events = multiplex(&requests, 8, &mutations, 4, 777);
    let run = |workers: usize, queue: usize| {
        let service = wiki_service(graph.clone());
        run_daemon(
            &service,
            &events,
            &DaemonConfig { workers: Some(workers), queue_capacity: queue, ..Default::default() },
        )
        .unwrap()
    };
    let baseline = run(1, 1);
    assert!(baseline.metrics.served > 0, "the wiki stream must serve something");
    assert!(baseline.metrics.mutation_batches > 0, "the stream must open epochs");
    // Everything about an applied epoch is part of the determinism
    // contract except `invalidated`, which counts cache evictions and so
    // depends on how far the workers had drained when the batch landed.
    let applied_key = |run: &psr_core::serving::daemon::DaemonRun| {
        run.applied
            .iter()
            .map(|a| {
                (
                    a.time,
                    a.epoch.version,
                    a.epoch.insertions,
                    a.epoch.deletions,
                    a.epoch.dirty_targets.clone(),
                    a.epoch.compacted,
                )
            })
            .collect::<Vec<_>>()
    };
    for (workers, queue) in [(4, 2), (8, 16)] {
        let other = run(workers, queue);
        assert_eq!(baseline.batches, other.batches, "{workers} workers, queue {queue}");
        assert_eq!(applied_key(&baseline), applied_key(&other));
        assert!(other.metrics.max_queue_depth <= queue, "bounded queue must bound depth");
    }
}

#[test]
fn daemon_matches_the_one_shot_serving_path() {
    // The daemon loop must be sugar over serve_batch + apply_mutations:
    // a manual replay of the same event sequence on a fresh service is
    // bit-identical, which is what lets `psr serve` rebase onto it.
    let graph = wiki_graph();
    let (requests, mutations) = wiki_streams(&graph);
    let events = multiplex(&requests, 10, &mutations, 6, 555);

    let run = run_daemon(&wiki_service(graph.clone()), &events, &DaemonConfig::default()).unwrap();

    let oneshot = wiki_service(graph);
    let mut expected = Vec::new();
    for event in &events {
        match event {
            DaemonEvent::Mutations { mutations, .. } => {
                oneshot.apply_mutations(mutations).unwrap();
            }
            DaemonEvent::Requests { seed, requests, .. } => {
                expected.push(oneshot.serve_batch(requests, *seed));
            }
        }
    }
    assert_eq!(run.batches.len(), expected.len());
    for (batch, outcomes) in run.batches.iter().zip(&expected) {
        assert_eq!(&batch.outcomes, outcomes, "batch #{}", batch.index);
    }
    assert_eq!(
        run.metrics.served + run.metrics.rejected_for_budget + run.metrics.rejected_other,
        run.metrics.requests,
        "every ingested request must be accounted for"
    );
}

#[test]
fn backpressure_keeps_the_queue_at_capacity_one() {
    let graph = wiki_graph();
    let (requests, mutations) = wiki_streams(&graph);
    let events = multiplex(&requests, 4, &mutations, 3, 99);
    let service = wiki_service(graph);
    let run = run_daemon(
        &service,
        &events,
        &DaemonConfig { workers: Some(4), queue_capacity: 1, ..Default::default() },
    )
    .unwrap();
    assert_eq!(run.metrics.max_queue_depth, 1, "capacity 1 admits exactly one in-flight job");
    assert_eq!(
        run.batches.len(),
        requests.len().div_ceil(4),
        "backpressure must delay, never drop"
    );
}

/// The PR's restart acceptance criterion: kill a journalled daemon after
/// it drained a workload, restart it on the same journal, and every
/// target's ε spend is identical — so re-running the workload is refused
/// for budget, not served afresh.
#[test]
fn daemon_restart_replays_identical_budget_spend() {
    let path = scratch_path("restart");
    let _cleanup = Cleanup(path.clone());
    let budget = 2.0;
    let config = ServiceConfig {
        epsilon_per_request: 1.0,
        budget_per_target: budget,
        threads: Some(2),
        ..Default::default()
    };
    let targets: Vec<u32> = vec![0, 1, 2, 3, 4];
    // Two rounds of one request per target exhaust the 2.0 budget.
    let events: Vec<DaemonEvent> = (0..2)
        .map(|round| DaemonEvent::Requests {
            time: round + 1,
            seed: 40 + round,
            requests: targets.iter().map(|&target| BatchRequest { target, k: 2 }).collect(),
        })
        .collect();

    let spend_before: Vec<f64> = {
        let ledger = JournalLedger::open(&path, budget).unwrap();
        let service = RecommendationService::with_ledger(
            psr_datasets::toy::karate_club(),
            Box::new(CommonNeighbors),
            config,
            Box::new(ledger),
        );
        let run = run_daemon(&service, &events, &DaemonConfig::default()).unwrap();
        assert_eq!(run.metrics.served, 10, "both rounds fit the budget");
        targets.iter().map(|&t| service.spent_budget(t)).collect()
    }; // killed: no shutdown hook ran

    // Restart on the same journal: spend replays bit-identically…
    let ledger = JournalLedger::open(&path, budget).unwrap();
    for (&target, &before) in targets.iter().zip(&spend_before) {
        assert_eq!(before, 2.0, "target {target} drained its budget pre-kill");
        assert_eq!(ledger.spent(target), before, "target {target} spend must survive the kill");
    }
    let service = RecommendationService::with_ledger(
        psr_datasets::toy::karate_club(),
        Box::new(CommonNeighbors),
        config,
        Box::new(ledger),
    );
    // …so replaying the same workload is now refused wholesale.
    let replay = run_daemon(&service, &events, &DaemonConfig::default()).unwrap();
    assert_eq!(replay.metrics.served, 0, "an exhausted budget must stay exhausted");
    assert_eq!(replay.metrics.rejected_for_budget, 10);
    for batch in &replay.batches {
        for outcome in &batch.outcomes {
            assert!(matches!(outcome, Err(ServeError::BudgetExhausted { .. })), "{outcome:?}");
        }
    }
    for (&target, &before) in targets.iter().zip(&spend_before) {
        assert_eq!(service.spent_budget(target), before, "refusals must not charge");
    }
}
