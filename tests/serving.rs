//! Batch-serving integration: the `RecommendationService` worker pool over
//! real preset graphs — thread-count determinism, directed candidate
//! policy, budget enforcement, and shared-graph wiring, end to end.

use std::sync::Arc;

use psr_core::serving::{BatchRequest, RecommendationService, ServeError, ServiceConfig};
use psr_core::{Recommender, RecommenderConfig};
use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_privacy::ExponentialMechanism;
use psr_utility::{CandidateSet, CommonNeighbors, WeightedPaths};

fn wiki_service(threads: Option<usize>) -> RecommendationService {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig { threads, ..Default::default() },
    )
}

/// Every connected node asks for `k` recommendations.
fn batch_for(service: &RecommendationService, k: usize) -> Vec<BatchRequest> {
    let graph = service.graph();
    graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .map(|target| BatchRequest { target, k })
        .collect()
}

#[test]
fn batch_is_deterministic_across_thread_counts() {
    // The experiment.rs guarantee, mirrored by the serving pool: the same
    // request batch (duplicates included) produces bit-identical outcomes
    // whether one worker or eight answer it.
    let one = wiki_service(Some(1));
    let eight = wiki_service(Some(8));
    let mut requests = batch_for(&one, 2);
    let duplicates: Vec<BatchRequest> = requests.iter().take(10).copied().collect();
    requests.extend(duplicates);

    let a = one.serve_batch(&requests, 77);
    let b = eight.serve_batch(&requests, 77);
    assert_eq!(a, b);
    // And a fresh service replays identically: no hidden global state.
    assert_eq!(a, wiki_service(Some(3)).serve_batch(&requests, 77));
}

#[test]
fn served_recommendations_are_valid_and_distinct() {
    let service = wiki_service(None);
    let requests = batch_for(&service, 3);
    let outcomes = service.serve_batch(&requests, 5);
    assert_eq!(outcomes.len(), requests.len());
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let served = outcome.as_ref().expect("connected wiki targets must serve");
        assert!(!served.recommendations.is_empty());
        let distinct: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(distinct.len(), served.recommendations.len());
        for &v in &served.recommendations {
            assert_ne!(v, request.target);
            assert!(!service.graph().has_edge(request.target, v));
        }
    }
}

#[test]
fn directed_graph_candidates_respect_out_edges_only() {
    // The §7.1 candidate policy on directed graphs, served through the
    // batch path: out-neighbours are excluded, pure in-neighbours remain
    // eligible — exactly what `CandidateSet` promises.
    let (graph, _) = twitter_like(PresetConfig::scaled(0.02, 7)).unwrap();
    assert!(graph.is_directed());
    let graph = Arc::new(graph);
    let service = RecommendationService::new(
        Arc::clone(&graph),
        Box::new(WeightedPaths::paper(0.005)),
        ServiceConfig { budget_per_target: f64::INFINITY, threads: Some(2), ..Default::default() },
    );

    let targets: Vec<u32> = graph.nodes().filter(|&v| graph.degree(v) > 0).take(40).collect();
    let requests: Vec<BatchRequest> =
        targets.iter().map(|&target| BatchRequest { target, k: 4 }).collect();
    for (request, outcome) in requests.iter().zip(service.serve_batch(&requests, 13)) {
        let served = match outcome {
            Ok(served) => served,
            Err(ServeError::NoCandidates { .. }) => continue,
            Err(other) => panic!("unexpected rejection: {other}"),
        };
        let candidates = CandidateSet::for_target(&graph, request.target);
        for &v in &served.recommendations {
            assert!(candidates.contains(v), "{v} not a candidate of {}", request.target);
            assert!(
                !graph.neighbors(request.target).contains(&v),
                "recommended an existing out-neighbour"
            );
        }
    }

    // The policy is asymmetric: somewhere in the batch a recommendation
    // may point at a node that already follows the target (in-neighbour).
    // Verify the candidate sets themselves allow it, so the service is
    // not silently over-excluding.
    let asymmetric = targets.iter().any(|&t| {
        let candidates = CandidateSet::for_target(&graph, t);
        graph
            .nodes()
            .any(|v| graph.has_edge(v, t) && !graph.has_edge(t, v) && candidates.contains(v))
    });
    assert!(asymmetric, "no target had an eligible in-neighbour — candidate policy broken?");
}

#[test]
fn budgets_are_enforced_per_target_across_batches() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    let service = RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig {
            epsilon_per_request: 0.5,
            budget_per_target: 1.0,
            threads: Some(2),
            ..Default::default()
        },
    );
    let target = service.graph().nodes().find(|&v| service.graph().degree(v) > 0).unwrap();

    // Two requests fit the budget exactly; the third must be refused, and
    // the refusal must survive across separate batches (state, not a
    // per-batch counter).
    assert!(service.serve_one(target, 1, 1).is_ok());
    assert_eq!(service.remaining_budget(target), 0.5);
    let outcomes =
        service.serve_batch(&[BatchRequest { target, k: 2 }, BatchRequest { target, k: 1 }], 2);
    assert!(outcomes[0].is_ok());
    match &outcomes[1] {
        Err(ServeError::BudgetExhausted { requested, remaining, .. }) => {
            assert_eq!(*requested, 0.5);
            assert!(*remaining < 1e-9);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(service.remaining_budget(target), 0.0);
}

#[test]
fn service_and_recommender_share_one_graph() {
    let service = wiki_service(Some(2));
    let recommender = Recommender::new(
        service.shared_graph(),
        Box::new(CommonNeighbors),
        Box::new(ExponentialMechanism::paper()),
        RecommenderConfig::default(),
    );
    assert!(std::ptr::eq(service.graph(), recommender.graph()));

    // Both paths serve valid recommendations from the same instance.
    let target = service.graph().nodes().find(|&v| service.graph().degree(v) > 0).unwrap();
    let served = service.serve_one(target, 1, 3).unwrap();
    assert!(!service.graph().has_edge(target, served.recommendations[0]));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let single = recommender.recommend(target, &mut rng).unwrap();
    assert!(!recommender.graph().has_edge(target, single));
}
