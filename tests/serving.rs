//! Batch-serving integration: the `RecommendationService` worker pool over
//! real preset graphs — thread-count determinism, directed candidate
//! policy, budget enforcement, shared-graph wiring, and graph-epoch
//! behaviour (`apply_mutations`), end to end.

use std::sync::Arc;

use psr_core::serving::{BatchRequest, RecommendationService, ServeError, ServiceConfig};
use psr_core::{Recommender, RecommenderConfig};
use psr_datasets::{twitter_like, wiki_vote_like, PresetConfig};
use psr_gen::{edge_stream, rng_from_seed, StreamParams};
use psr_graph::{EdgeMutation, GraphView, MutationOp};
use psr_privacy::ExponentialMechanism;
use psr_utility::{CandidateSet, CommonNeighbors, WeightedPaths};

fn wiki_service(threads: Option<usize>) -> RecommendationService {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig { threads, ..Default::default() },
    )
}

/// Every connected node asks for `k` recommendations.
fn batch_for(service: &RecommendationService, k: usize) -> Vec<BatchRequest> {
    let graph = service.shared_graph();
    graph
        .nodes()
        .filter(|&v| graph.degree(v) > 0)
        .map(|target| BatchRequest { target, k })
        .collect()
}

#[test]
fn batch_is_deterministic_across_thread_counts() {
    // The experiment.rs guarantee, mirrored by the serving pool: the same
    // request batch (duplicates included) produces bit-identical outcomes
    // whether one worker or eight answer it.
    let one = wiki_service(Some(1));
    let eight = wiki_service(Some(8));
    let mut requests = batch_for(&one, 2);
    let duplicates: Vec<BatchRequest> = requests.iter().take(10).copied().collect();
    requests.extend(duplicates);

    let a = one.serve_batch(&requests, 77);
    let b = eight.serve_batch(&requests, 77);
    assert_eq!(a, b);
    // And a fresh service replays identically: no hidden global state.
    assert_eq!(a, wiki_service(Some(3)).serve_batch(&requests, 77));
}

#[test]
fn served_recommendations_are_valid_and_distinct() {
    let service = wiki_service(None);
    let requests = batch_for(&service, 3);
    let outcomes = service.serve_batch(&requests, 5);
    assert_eq!(outcomes.len(), requests.len());
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let served = outcome.as_ref().expect("connected wiki targets must serve");
        assert!(!served.recommendations.is_empty());
        let distinct: std::collections::HashSet<_> = served.recommendations.iter().collect();
        assert_eq!(distinct.len(), served.recommendations.len());
        for &v in &served.recommendations {
            assert_ne!(v, request.target);
            assert!(!service.view().has_edge(request.target, v));
        }
    }
}

#[test]
fn directed_graph_candidates_respect_out_edges_only() {
    // The §7.1 candidate policy on directed graphs, served through the
    // batch path: out-neighbours are excluded, pure in-neighbours remain
    // eligible — exactly what `CandidateSet` promises.
    let (graph, _) = twitter_like(PresetConfig::scaled(0.02, 7)).unwrap();
    assert!(graph.is_directed());
    let graph = Arc::new(graph);
    let service = RecommendationService::new(
        Arc::clone(&graph),
        Box::new(WeightedPaths::paper(0.005)),
        ServiceConfig { budget_per_target: f64::INFINITY, threads: Some(2), ..Default::default() },
    );

    let targets: Vec<u32> = graph.nodes().filter(|&v| graph.degree(v) > 0).take(40).collect();
    let requests: Vec<BatchRequest> =
        targets.iter().map(|&target| BatchRequest { target, k: 4 }).collect();
    for (request, outcome) in requests.iter().zip(service.serve_batch(&requests, 13)) {
        let served = match outcome {
            Ok(served) => served,
            Err(ServeError::NoCandidates { .. }) => continue,
            Err(other) => panic!("unexpected rejection: {other}"),
        };
        let candidates = CandidateSet::for_target(&graph, request.target);
        for &v in &served.recommendations {
            assert!(candidates.contains(v), "{v} not a candidate of {}", request.target);
            assert!(
                !graph.neighbors(request.target).contains(&v),
                "recommended an existing out-neighbour"
            );
        }
    }

    // The policy is asymmetric: somewhere in the batch a recommendation
    // may point at a node that already follows the target (in-neighbour).
    // Verify the candidate sets themselves allow it, so the service is
    // not silently over-excluding.
    let asymmetric = targets.iter().any(|&t| {
        let candidates = CandidateSet::for_target(&graph, t);
        graph
            .nodes()
            .any(|v| graph.has_edge(v, t) && !graph.has_edge(t, v) && candidates.contains(v))
    });
    assert!(asymmetric, "no target had an eligible in-neighbour — candidate policy broken?");
}

#[test]
fn budgets_are_enforced_per_target_across_batches() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    let service = RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig {
            epsilon_per_request: 0.5,
            budget_per_target: 1.0,
            threads: Some(2),
            ..Default::default()
        },
    );
    let graph = service.shared_graph();
    let target = graph.nodes().find(|&v| graph.degree(v) > 0).unwrap();

    // Two requests fit the budget exactly; the third must be refused, and
    // the refusal must survive across separate batches (state, not a
    // per-batch counter).
    assert!(service.serve_one(target, 1, 1).is_ok());
    assert_eq!(service.remaining_budget(target), 0.5);
    let outcomes =
        service.serve_batch(&[BatchRequest { target, k: 2 }, BatchRequest { target, k: 1 }], 2);
    assert!(outcomes[0].is_ok());
    match &outcomes[1] {
        Err(ServeError::BudgetExhausted { requested, remaining, .. }) => {
            assert_eq!(*requested, 0.5);
            assert!(*remaining < 1e-9);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
    assert_eq!(service.remaining_budget(target), 0.0);
}

#[test]
fn service_and_recommender_share_one_graph() {
    let service = wiki_service(Some(2));
    let recommender = Recommender::new(
        service.shared_graph(),
        Box::new(CommonNeighbors),
        Box::new(ExponentialMechanism::paper()),
        RecommenderConfig::default(),
    );
    assert!(std::ptr::eq(service.shared_graph().as_ref() as *const _, recommender.graph()));

    // Both paths serve valid recommendations from the same instance.
    let graph = service.shared_graph();
    let target = graph.nodes().find(|&v| graph.degree(v) > 0).unwrap();
    let served = service.serve_one(target, 1, 3).unwrap();
    assert!(!service.view().has_edge(target, served.recommendations[0]));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let single = recommender.recommend(target, &mut rng).unwrap();
    assert!(!recommender.graph().has_edge(target, single));
}

#[test]
fn thread_count_determinism_survives_epochs() {
    // The bit-identity guarantee must hold *per epoch*, with warm caches
    // and selective invalidation in play: serve → mutate → serve must
    // agree between a 1-worker and an 8-worker service at every step.
    let one = wiki_service(Some(1));
    let eight = wiki_service(Some(8));
    let requests = batch_for(&one, 2);
    let mutations: Vec<EdgeMutation> = {
        let base = one.shared_graph();
        let mut rng = rng_from_seed(2024);
        edge_stream(&base, StreamParams { events: 40, insert_fraction: 0.6 }, &mut rng)
            .into_iter()
            .map(|e| e.mutation)
            .collect()
    };

    assert_eq!(one.serve_batch(&requests, 17), eight.serve_batch(&requests, 17));
    let ea = one.apply_mutations(&mutations).unwrap();
    let eb = eight.apply_mutations(&mutations).unwrap();
    assert_eq!(ea, eb, "epoch summaries must not depend on thread count");
    assert_eq!(one.epoch(), 1);
    assert_eq!(one.serve_batch(&requests, 18), eight.serve_batch(&requests, 18));
    // And a fresh service over the mutated snapshot replays the post-epoch
    // batch identically: no hidden cache or epoch state leaks into results.
    one.reset_budgets();
    let fresh = RecommendationService::new(
        one.snapshot(),
        Box::new(CommonNeighbors),
        ServiceConfig { threads: Some(3), ..Default::default() },
    );
    assert_eq!(one.serve_batch(&requests, 18), fresh.serve_batch(&requests, 18));
}

#[test]
fn budgets_stay_continuous_across_epochs() {
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    let service = RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig {
            epsilon_per_request: 0.5,
            budget_per_target: 1.5,
            threads: Some(2),
            ..Default::default()
        },
    );
    let graph = service.shared_graph();
    let target = graph.nodes().find(|&v| graph.degree(v) > 0).unwrap();

    // Spend ⅔ of the budget in epoch 0.
    assert!(service.serve_one(target, 1, 1).is_ok());
    assert!(service.serve_one(target, 1, 2).is_ok());
    assert_eq!(service.remaining_budget(target), 0.5);

    // A mutation epoch must neither refund nor wipe the spend.
    let other = graph.nodes().find(|&v| v != target && !graph.has_edge(target, v)).unwrap();
    service.apply_mutations(&[EdgeMutation::insert(target, other)]).unwrap();
    assert_eq!(service.remaining_budget(target), 0.5);

    // The last half-ε request fits; the next is refused with the typed
    // error, in the *new* epoch.
    assert!(service.serve_one(target, 1, 3).is_ok());
    match service.serve_one(target, 1, 4) {
        Err(ServeError::BudgetExhausted { target: t, requested, remaining }) => {
            assert_eq!(t, target);
            assert_eq!(requested, 0.5);
            assert!(remaining < 1e-9);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn rejected_mutation_batches_roll_back_at_scale() {
    let service = wiki_service(Some(2));
    let base = service.shared_graph();
    let (u, v) = base.edges().next().expect("preset has edges");
    let fresh = base.nodes().find(|&w| w != u && !base.has_edge(u, w)).unwrap();

    // Insert-a-duplicate fails at index 1; the valid index-0 insert must
    // be rolled back with it.
    let err = service
        .apply_mutations(&[EdgeMutation::insert(u, fresh), EdgeMutation::insert(u, v)])
        .unwrap_err();
    match err {
        psr_core::serving::MutationError::Rejected { index, mutation, .. } => {
            assert_eq!(index, 1);
            assert_eq!(mutation.op, MutationOp::Insert);
        }
    }
    assert_eq!(service.epoch(), 0);
    assert!(!service.view().has_edge(u, fresh), "partial application leaked");
    // Deleting a missing edge reports the typed graph error too.
    let err = service.apply_mutations(&[EdgeMutation::delete(u, fresh)]).unwrap_err();
    assert!(err.to_string().contains("not found"), "{err}");
}

#[test]
fn pinned_batches_drain_bit_identically_while_epochs_advance() {
    // The RCU acceptance check: batches pinned to epoch 0 keep
    // completing — bit-identically — while a concurrent writer stages
    // epoch after epoch through `apply_mutations`, and the pin still
    // reads the old graph after every swap. Reads never stall and never
    // see a half-applied epoch.
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap();
    let service = RecommendationService::new(
        graph,
        Box::new(CommonNeighbors),
        ServiceConfig {
            budget_per_target: f64::INFINITY, // isolate reads from admission
            threads: Some(2),
            ..Default::default()
        },
    );
    let requests: Vec<BatchRequest> = batch_for(&service, 2).into_iter().take(48).collect();
    let schedule: Vec<Vec<EdgeMutation>> = {
        let base = service.shared_graph();
        let mut rng = rng_from_seed(77);
        edge_stream(&base, StreamParams { events: 24, insert_fraction: 0.6 }, &mut rng)
            .chunks(4)
            .map(|chunk| chunk.iter().map(|e| e.mutation).collect())
            .collect()
    };
    let net_edges: i64 =
        schedule.iter().flatten().map(|m| if m.op == MutationOp::Insert { 1 } else { -1 }).sum();
    let base_edges = service.view().num_edges();

    let pin = service.pin();
    assert_eq!(pin.version(), 0);
    let baseline = service.serve_batch_pinned(&pin, &requests, 7);

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for batch in &schedule {
                service.apply_mutations(batch).unwrap();
            }
        });
        // Drain pinned batches while the writer stages epochs; at least
        // one drain runs, and every one is bit-identical to the
        // pre-mutation baseline.
        let mut drains = 0usize;
        loop {
            assert_eq!(
                service.serve_batch_pinned(&pin, &requests, 7),
                baseline,
                "drain #{drains} diverged while epochs advanced"
            );
            drains += 1;
            if writer.is_finished() {
                break;
            }
        }
        assert!(drains >= 1);
        writer.join().unwrap();
    });

    assert_eq!(service.epoch(), schedule.len() as u64, "the writer advanced every epoch");
    assert_eq!(pin.version(), 0, "the pin stays on the epoch it captured");
    assert_eq!(
        service.serve_batch_pinned(&pin, &requests, 7),
        baseline,
        "a pin outlives the swap: old-epoch reads stay bit-identical"
    );
    // The pin still sees the original edge set; the current epoch sees
    // the mutated one.
    assert_eq!(pin.num_edges(), base_edges);
    let current = service.pin();
    assert_eq!(current.version(), schedule.len() as u64);
    assert_eq!(current.num_edges() as i64, base_edges as i64 + net_edges);
}
