//! The node-identity acceptance suite: Appendix A's impossibility result
//! as running code, measured through the real serving path.
//!
//! Headline claims (fixed seeds, through `RecommendationService`
//! batches):
//!
//! * the **non-private top-k baseline** leaks a node's entire rewired
//!   neighbourhood at a Clopper–Pearson-certified empirical-ε lower
//!   bound that exceeds *every* usable budget ε ≤ 1 — and on the karate
//!   club it clears the Appendix-A theory floors themselves
//!   (`node_privacy_eps_lower(n, 1)` and the asymptotic `ln(n)/2`),
//!   the constructive reading of "node-identity privacy is impossible
//!   for accurate recommenders";
//! * every **DP mechanism** (Exponential through the service, Laplace
//!   and smoothing through the single-draw path) keeps every adversary's
//!   certified empirical ε at or below the composed transcript budget,
//!   even against the much larger node-adjacency hypothesis gap;
//! * both claims survive **rewire epochs**: the whole `rewire_node`
//!   batch applied mid-stream through `apply_mutations` (warm caches,
//!   selective invalidation) is exactly as inferable as static serving —
//!   and no more — with bit-identical pre-divergence prefixes.
//!
//! The property block at the bottom is the node-adjacency *conformance*
//! suite (run at `PROPTEST_CASES=256` in CI): harness determinism across
//! thread counts, bit-identical rewire-epoch prefixes, and the
//! DP-consistency of the estimator under node adjacency on random
//! graphs.

use std::sync::Arc;

use proptest::prelude::*;
use psr_attack::{
    default_rewire_target, dp_advantage_ceiling, leaking_node_rewire, node_observers,
    AttackMechanism, FrequencyBaseline, LikelihoodRatioMia, NodeEpochStyle, NodeIdentityScenario,
    NodeScenarioConfig, ReconstructionAdversary,
};
use psr_bounds::node_privacy::{node_privacy_eps_lower, node_privacy_eps_lower_asymptotic};
use psr_datasets::toy::karate_club;
use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_graph::{Graph, GraphView, NodeId};
use psr_utility::{CandidateSet, CommonNeighbors};

mod common;
use common::random_graph;

/// The leaky karate rewire every headline test starts from: a node whose
/// rewiring makes some observer's non-private answer deterministically
/// flip, found by the canonical search.
fn leaky_karate(mechanism: AttackMechanism) -> (Arc<Graph>, NodeScenarioConfig) {
    let graph = Arc::new(karate_club());
    let (node, new, observers) =
        leaking_node_rewire(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    let config = NodeScenarioConfig {
        rounds: 6,
        trials_per_world: 48,
        mechanism,
        seed: 2011, // the paper's year; fixed for the headline numbers
        ..NodeScenarioConfig::new(node, new, observers)
    };
    (graph, config)
}

fn scenario(graph: Arc<Graph>, config: NodeScenarioConfig) -> NodeIdentityScenario {
    NodeIdentityScenario::new(graph, Box::new(CommonNeighbors), config)
}

#[test]
fn non_private_node_attacker_clears_the_appendix_a_floor() {
    let (graph, config) = leaky_karate(AttackMechanism::NonPrivateTopK);
    let n = graph.num_nodes();
    let s = scenario(graph, config);
    let result = s.attack(&s.collect(), &ReconstructionAdversary);

    // The certified empirical-ε lower bound alone (48 trials, 95% CP)
    // exceeds every usable budget…
    assert!(
        result.empirical_epsilon.lower > 1.0,
        "certified ε lower bound {} must exceed every ε ≤ 1 budget",
        result.empirical_epsilon.lower
    );
    // …and the measured advantage clears the Lemma-1 ceiling for every
    // ε ≤ 1 (the ceiling is monotone, so ε = 1 covers all smaller ε).
    for eps in [1.0, 0.75, 0.5, 0.25, 0.1] {
        assert!(result.advantage.advantage > dp_advantage_ceiling(eps), "ε = {eps}");
    }

    // The overlay puts the measurement right next to Appendix A's
    // theory floors — and on karate the certified bound clears them
    // both: the leak the theory *requires* is actually measured.
    let comparison = s.compare(&result);
    assert_eq!(comparison.adjacency, "node");
    let floor = comparison.node_epsilon_lower.expect("node overlay present");
    let asymptotic = comparison.node_epsilon_lower_asymptotic.expect("node overlay present");
    assert_eq!(floor, node_privacy_eps_lower(n, 1));
    assert_eq!(asymptotic, node_privacy_eps_lower_asymptotic(n));
    assert!(
        result.empirical_epsilon.lower > floor,
        "certified {} must clear the finite-n floor {floor}",
        result.empirical_epsilon.lower
    );
    assert!(
        result.empirical_epsilon.lower > asymptotic,
        "certified {} must clear ln(n)/2 = {asymptotic}",
        result.empirical_epsilon.lower
    );

    // The other face of the trade-off: non-private serving is accurate,
    // and the Corollary-1 floor at t = 2 is still binding far above 1.
    let accuracy = comparison.mean_accuracy.expect("observers have scorable vectors");
    assert!(accuracy > 0.999, "non-private top-1 serves the argmax: {accuracy}");
    let acc_floor = comparison.accuracy_epsilon_floor.expect("binding at perfect accuracy");
    assert!(acc_floor > 1.0, "accuracy {accuracy} implies ε ≥ {acc_floor} at t = 2");
    assert!(comparison.consistent, "nothing was promised, nothing is violated");
}

#[test]
fn every_dp_mechanism_stays_within_its_budget_under_node_adjacency() {
    let mechanisms = [
        AttackMechanism::Exponential { epsilon: 0.5 },
        AttackMechanism::Laplace { epsilon: 0.5 },
        AttackMechanism::Smoothing { x: 0.05 },
    ];
    for mechanism in mechanisms {
        let (graph, config) = leaky_karate(mechanism);
        let s = scenario(graph, config);
        let budget = s.transcript_epsilon().expect("DP mechanisms have a budget");
        let node_budget = s.node_transcript_epsilon().expect("group-privacy budget");
        assert!(
            node_budget > budget,
            "the node-level budget scales the edge budget by the rewire size"
        );
        let set = s.collect();
        let adversaries: [&dyn psr_attack::Adversary; 3] = [
            &ReconstructionAdversary,
            &LikelihoodRatioMia::new(s.probe(), 7),
            &FrequencyBaseline { probe: s.probe() },
        ];
        for adversary in adversaries {
            let result = s.attack(&set, adversary);
            // The strong form: certified ε stays within even the
            // *edge-composed* budget (and a fortiori within the
            // group-privacy node budget).
            assert!(
                result.empirical_epsilon.lower <= budget,
                "{} vs {:?}: certified ε {} exceeds the transcript budget {budget}",
                adversary.name(),
                mechanism,
                result.empirical_epsilon.lower
            );
            let comparison = s.compare(&result);
            assert!(comparison.consistent, "{} vs {mechanism:?}", adversary.name());
        }
    }
}

#[test]
fn rewire_epoch_leaks_when_non_private() {
    // Both worlds serve the same base graph for one round, then world 1
    // applies the whole rewire batch through apply_mutations and serving
    // continues incrementally from the warm caches.
    let (graph, config) = leaky_karate(AttackMechanism::NonPrivateTopK);
    let config = NodeScenarioConfig {
        epochs: NodeEpochStyle::RewireMidStream { prefix_rounds: 1 },
        ..config
    };
    let s = scenario(graph, config);
    let set = s.collect();

    // Pre-divergence rounds are bit-identical across worlds (paired
    // seeds, same graph): whatever leaks, leaks *after* the epoch.
    let per_round = s.config().observers.len();
    for (t0, t1) in set.world0.iter().zip(&set.world1) {
        assert_eq!(t0.entries[..per_round], t1.entries[..per_round]);
    }

    let result = s.attack(&set, &ReconstructionAdversary);
    assert!(
        result.advantage.advantage > dp_advantage_ceiling(1.0),
        "a rewire through apply_mutations leaks past the ε = 1 ceiling: {}",
        result.advantage.advantage
    );
    assert!(
        result.empirical_epsilon.lower > 1.0,
        "the epoched leak still certifies past every usable budget: {}",
        result.empirical_epsilon.lower
    );
}

#[test]
fn dp_serving_suppresses_the_rewire_epoch_leak() {
    // Same epoched scenario at ε = 0.5, plus the static control: the
    // certified ε stays within the composed transcript budget whether
    // the rewire lands mid-stream or the worlds differ from round 0.
    for epochs in [NodeEpochStyle::RewireMidStream { prefix_rounds: 1 }, NodeEpochStyle::Static] {
        let (graph, config) = leaky_karate(AttackMechanism::Exponential { epsilon: 0.5 });
        let s = scenario(graph, NodeScenarioConfig { epochs, ..config });
        let budget = s.transcript_epsilon().expect("budgeted");
        let result = s.attack(&s.collect(), &ReconstructionAdversary);
        assert!(
            result.empirical_epsilon.lower <= budget,
            "{epochs:?}: certified {} > budget {budget}",
            result.empirical_epsilon.lower
        );
    }
}

#[test]
fn wiki_vote_scale_certifies_above_every_usable_budget() {
    // The same headline at wiki-vote scale (×0.1 ≈ 712 nodes): the
    // non-private attacker's certified floor still beats every usable
    // budget, and the Appendix-A overlay grows with ln(n).
    let (graph, _) = wiki_vote_like(PresetConfig::scaled(0.1, 2011)).expect("generator");
    let graph = Arc::new(graph);
    let n = graph.num_nodes();
    assert!(n > 500, "scaled wiki preset is sized like the paper's graph: {n}");
    let (node, new, observers) =
        leaking_node_rewire(&graph, &CommonNeighbors, 4, 50_000).expect("wiki-scale leaks");
    let config = NodeScenarioConfig {
        rounds: 4,
        trials_per_world: 64,
        mechanism: AttackMechanism::NonPrivateTopK,
        seed: 2011,
        ..NodeScenarioConfig::new(node, new, observers)
    };
    let s = scenario(Arc::clone(&graph), config);
    let result = s.attack(&s.collect(), &ReconstructionAdversary);
    assert!(
        result.empirical_epsilon.lower > 1.0,
        "certified ε lower bound {} must exceed every ε ≤ 1 budget",
        result.empirical_epsilon.lower
    );
    let comparison = s.compare(&result);
    let floor = comparison.node_epsilon_lower.expect("node overlay");
    let asymptotic = comparison.node_epsilon_lower_asymptotic.expect("node overlay");
    assert_eq!(floor, node_privacy_eps_lower(n, 1));
    assert!(
        asymptotic > node_privacy_eps_lower_asymptotic(34),
        "the floor grows with n: ln({n})/2 = {asymptotic}"
    );
}

// =====================================================================
// Node-adjacency conformance properties (CI: PROPTEST_CASES=256)
// =====================================================================

/// A valid `(node, new_neighbours, observers)` triple for a random
/// graph, or `None` when the graph offers none: the first node with a
/// disjoint rewire target and at least one support-stable observer with
/// candidate slack in both worlds.
fn usable_rewire(graph: &Arc<Graph>, cap: usize) -> Option<(NodeId, Vec<NodeId>, Vec<NodeId>)> {
    for v in graph.nodes() {
        let Some(new) = default_rewire_target(graph, v) else { continue };
        let observers: Vec<NodeId> = node_observers(graph, v, &new, cap + 4)
            .into_iter()
            .filter(|&o| CandidateSet::for_target(graph.as_ref(), o).len() >= 2)
            .take(cap)
            .collect();
        if !observers.is_empty() {
            return Some((v, new, observers));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Harness determinism under node adjacency: the same scenario
    /// collected on 1 and 3 worker threads produces identical
    /// transcripts and scores, rewire batch and all.
    #[test]
    fn node_harness_is_deterministic_across_thread_counts(
        graph in random_graph(10, 10),
        seed in 0u64..1000,
    ) {
        let graph = Arc::new(graph);
        let Some((node, new, observers)) = usable_rewire(&graph, 2) else { return Ok(()) };
        let config = |threads| NodeScenarioConfig {
            rounds: 2,
            trials_per_world: 5,
            seed,
            threads: Some(threads),
            mechanism: AttackMechanism::Exponential { epsilon: 0.8 },
            ..NodeScenarioConfig::new(node, new.clone(), observers.clone())
        };
        let a = NodeIdentityScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config(1));
        let b = NodeIdentityScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config(3));
        let (set_a, set_b) = (a.collect(), b.collect());
        prop_assert_eq!(&set_a, &set_b);
        let ra = a.attack(&set_a, &ReconstructionAdversary);
        let rb = b.attack(&set_b, &ReconstructionAdversary);
        prop_assert_eq!(ra.scores_world0, rb.scores_world0);
        prop_assert_eq!(ra.scores_world1, rb.scores_world1);
    }

    /// Rewire epochs share a bit-identical pre-divergence prefix across
    /// worlds (paired trial seeds over the same base graph), and world 0
    /// is untouched by the epoch style entirely.
    #[test]
    fn rewire_epoch_prefix_is_bit_identical_across_worlds(
        graph in random_graph(10, 10),
        seed in 0u64..1000,
        prefix_rounds in 1usize..3,
    ) {
        let graph = Arc::new(graph);
        let Some((node, new, observers)) = usable_rewire(&graph, 2) else { return Ok(()) };
        let config = |epochs| NodeScenarioConfig {
            rounds: 3,
            trials_per_world: 4,
            seed,
            threads: Some(1),
            mechanism: AttackMechanism::Exponential { epsilon: 0.6 },
            epochs,
            ..NodeScenarioConfig::new(node, new.clone(), observers.clone())
        };
        let epoch = NodeIdentityScenario::new(
            Arc::clone(&graph),
            Box::new(CommonNeighbors),
            config(NodeEpochStyle::RewireMidStream { prefix_rounds }),
        );
        let set = epoch.collect();
        let per_round = epoch.config().observers.len();
        for (t0, t1) in set.world0.iter().zip(&set.world1) {
            prop_assert_eq!(
                &t0.entries[..prefix_rounds * per_round],
                &t1.entries[..prefix_rounds * per_round]
            );
        }
        // World 0 never mutates: the epoch style cannot change it.
        let stat = NodeIdentityScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config(NodeEpochStyle::Static));
        prop_assert_eq!(stat.collect().world0, set.world0);
    }

    /// DP consistency of the estimator under node adjacency: on a random
    /// graph served by the ε = 1 Exponential mechanism, the certified
    /// empirical-ε lower bound never exceeds the composed transcript
    /// budget — despite the rewire's larger hypothesis gap.
    #[test]
    fn node_empirical_epsilon_never_exceeds_the_composed_budget(
        graph in random_graph(12, 14),
        seed in 0u64..1000,
    ) {
        let graph = Arc::new(graph);
        let Some((node, new, observers)) = usable_rewire(&graph, 2) else { return Ok(()) };
        let config = NodeScenarioConfig {
            rounds: 2,
            trials_per_world: 12,
            seed,
            threads: Some(2),
            mechanism: AttackMechanism::Exponential { epsilon: 1.0 },
            ..NodeScenarioConfig::new(node, new, observers)
        };
        let s = NodeIdentityScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config);
        let budget = s.transcript_epsilon().expect("budgeted");
        let set = s.collect();
        for adversary in [
            &ReconstructionAdversary as &dyn psr_attack::Adversary,
            &FrequencyBaseline { probe: s.probe() },
        ] {
            let result = s.attack(&set, adversary);
            prop_assert!(
                result.empirical_epsilon.lower <= budget,
                "{}: certified {} > budget {budget}",
                adversary.name(),
                result.empirical_epsilon.lower
            );
        }
    }
}
