//! Telemetry conformance: the observability layer observes, never
//! participates.
//!
//! The contract under test is the tentpole's hard guarantee: serving,
//! daemon, and frontier outcomes are **bit-identical** with telemetry
//! enabled vs disabled — counters, spans, gauges, and histograms may
//! watch the hot paths but can never perturb an RNG stream, a budget
//! charge, or a report byte. On top of that, the instrumented runs must
//! actually *measure*: admission counters add up to the workload, spend
//! gauges mirror the accountant, cache stats surface through
//! [`GraphBackend`] without downcasting, and the snapshot round-trips.

use std::sync::Arc;

use psr_core::serving::daemon::{multiplex, run_daemon, DaemonConfig};
use psr_core::serving::{BatchRequest, RecommendationService, ServiceConfig};
use psr_datasets::{wiki_vote_like, PresetConfig};
use psr_frontier::{run_sweep, ExperimentPlan, FrontierReport, SweepOptions};
use psr_gen::{edge_stream, request_stream, rng_from_seed, RequestStreamParams, StreamParams};
use psr_graph::{CompressedCsr, Graph, GraphBackend, GraphView};
use psr_obs::Telemetry;
use psr_utility::CommonNeighbors;

fn wiki_graph() -> Graph {
    wiki_vote_like(PresetConfig::scaled(0.05, 2011)).unwrap().0
}

/// A service over `backend`, optionally instrumented. Telemetry is the
/// ONLY difference between the pairs each test compares.
fn service(backend: GraphBackend, telemetry: Option<Arc<Telemetry>>) -> RecommendationService {
    let mut svc = RecommendationService::with_backend(
        backend,
        Box::new(CommonNeighbors),
        ServiceConfig {
            epsilon_per_request: 0.5,
            budget_per_target: 2.0,
            threads: Some(2),
            ..Default::default()
        },
    );
    if let Some(telemetry) = telemetry {
        svc.set_telemetry(telemetry);
    }
    svc
}

fn requests(n: u32) -> Vec<BatchRequest> {
    (0..n).map(|target| BatchRequest { target: target % 97, k: 3 }).collect()
}

#[test]
fn serving_outcomes_are_bit_identical_with_telemetry_on_and_off() {
    let graph = wiki_graph();
    let batch = requests(60);

    let plain = service(GraphBackend::from(graph.clone()), None);
    let telemetry = Telemetry::enabled();
    let instrumented = service(GraphBackend::from(graph), Some(telemetry.clone()));

    // Several batches so budgets start refusing (5 × 0.5 > 2.0): the
    // comparison covers served, budget-refused, and mixed batches.
    for round in 0..5u64 {
        let expected = plain.serve_batch(&batch, 1000 + round);
        let observed = instrumented.serve_batch(&batch, 1000 + round);
        assert_eq!(expected, observed, "round {round}: telemetry must not perturb outcomes");
    }

    // The instrumented run measured what actually happened: every
    // admission decision is counted exactly once, under the same names
    // the CLI's `--metrics-out` snapshot exposes.
    let snapshot = telemetry.metrics().snapshot();
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
            .value
    };
    assert_eq!(counter("serve.batches"), 5);
    assert_eq!(
        counter("serve.admitted")
            + counter("serve.rejected_budget")
            + counter("serve.rejected_other"),
        5 * 60,
        "every request admitted or rejected exactly once"
    );
    assert!(counter("serve.rejected_budget") > 0, "2.0 budget at eps 0.5 must refuse round 5");
    // Spans entered and exited for each batch, in sequence order.
    assert_eq!(
        telemetry.trace().events().iter().filter(|e| e.name == "serve.batch").count(),
        2 * 5,
        "one enter + one exit per batch"
    );
}

#[test]
fn daemon_runs_are_bit_identical_with_telemetry_on_and_off() {
    let graph = wiki_graph();
    let requests =
        request_stream(&graph, RequestStreamParams { events: 80, k: 3 }, &mut rng_from_seed(31));
    let mutations = edge_stream(
        &graph,
        StreamParams { events: 16, insert_fraction: 0.7 },
        &mut rng_from_seed(32),
    );
    let events = multiplex(&requests, 8, &mutations, 4, 777);

    let run = |telemetry: Option<Arc<Telemetry>>| {
        let svc = service(GraphBackend::from(graph.clone()), telemetry);
        run_daemon(&svc, &events, &DaemonConfig::default()).unwrap()
    };
    let plain = run(None);
    let telemetry = Telemetry::enabled();
    let instrumented = run(Some(telemetry.clone()));

    assert_eq!(plain.batches.len(), instrumented.batches.len());
    for (expected, observed) in plain.batches.iter().zip(&instrumented.batches) {
        assert_eq!(expected.outcomes, observed.outcomes, "batch #{}", expected.index);
        assert_eq!(expected.epoch, observed.epoch);
    }
    assert_eq!(plain.metrics.served, instrumented.metrics.served);
    assert_eq!(plain.metrics.rejected_for_budget, instrumented.metrics.rejected_for_budget);

    // Epoch events fired once per applied mutation batch.
    let snapshot = telemetry.metrics().snapshot();
    let applied =
        snapshot.counters.iter().find(|c| c.name == "epoch.applied").expect("epoch.applied");
    assert_eq!(applied.value, instrumented.applied.len() as u64);
    let epoch_events =
        telemetry.trace().events().iter().filter(|e| e.name == "epoch.apply").count();
    assert_eq!(epoch_events, instrumented.applied.len());
    // The registry mirrors the run's batch-latency population.
    let latency = snapshot
        .histograms
        .iter()
        .find(|h| h.name == "daemon.batch_latency_ns")
        .expect("daemon.batch_latency_ns");
    assert_eq!(latency.latency.count, instrumented.batches.len() as u64);
}

#[test]
fn frontier_reports_are_bit_identical_with_telemetry_on_and_off() {
    let plan = ExperimentPlan::toy();
    let plain = run_sweep(&plan, &SweepOptions::default()).unwrap();
    let telemetry = Telemetry::enabled();
    let instrumented = run_sweep(
        &plan,
        &SweepOptions { telemetry: Some(telemetry.clone()), ..Default::default() },
    )
    .unwrap();

    let expected = FrontierReport::assemble(&plan, plain.fingerprint, plain.results);
    let observed = FrontierReport::assemble(&plan, instrumented.fingerprint, instrumented.results);
    assert_eq!(expected.to_json(), observed.to_json(), "telemetry must not touch the report");

    // The sweep measured itself: one start + one finish event per cell,
    // and the cell counters match the plan's expansion.
    let snapshot = telemetry.metrics().snapshot();
    let counter = |name: &str| snapshot.counters.iter().find(|c| c.name == name).unwrap().value;
    assert_eq!(counter("frontier.cells_total"), instrumented.total as u64);
    assert_eq!(counter("frontier.cells_computed"), instrumented.computed as u64);
    assert_eq!(counter("frontier.cells_resumed"), 0);
    let events = telemetry.trace().events();
    assert_eq!(
        events.iter().filter(|e| e.name == "frontier.cell.start").count(),
        instrumented.computed
    );
    assert_eq!(
        events.iter().filter(|e| e.name == "frontier.cell.finish").count(),
        instrumented.computed
    );
}

#[test]
fn spend_gauges_mirror_the_budget_accountant() {
    let telemetry = Telemetry::enabled();
    let svc = service(GraphBackend::from(wiki_graph()), Some(telemetry.clone()));
    let batch = requests(10);
    let _ = svc.serve_batch(&batch, 7);
    svc.export_gauges();

    let snapshot = telemetry.metrics().snapshot();
    let gauge = |name: &str| {
        snapshot
            .gauges
            .iter()
            .find(|g| g.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .value
    };
    assert_eq!(gauge("budget.eps_per_target"), 2.0);
    assert_eq!(gauge("budget.targets_charged"), 10.0);
    for request in &batch {
        let spent = gauge(&format!("budget.eps_spent.t{}", request.target));
        assert_eq!(spent, svc.spent_budget(request.target), "target {}", request.target);
        assert_eq!(spent, 0.5, "one admitted request charges eps_per_request");
    }

    // Exporting twice must overwrite, not double-count: gauges are
    // idempotent snapshots of the accountant, not deltas.
    svc.export_gauges();
    let again = telemetry.metrics().snapshot();
    assert_eq!(snapshot.gauges, again.gauges);
}

#[test]
fn decode_cache_stats_surface_through_the_backend_without_downcasting() {
    let graph = wiki_graph();
    let compressed = Arc::new(CompressedCsr::open_bytes(CompressedCsr::encode(&graph, 4)).unwrap());
    let backend = GraphBackend::Compressed(Arc::clone(&compressed));

    // Plain CSR backends have no decode cache to report.
    assert!(GraphBackend::from(graph.clone()).cache_stats().is_none());

    let cold = backend.cache_stats().expect("compressed backends report stats");
    assert_eq!((cold.hits, cold.misses), (0, 0), "untouched cache has no traffic");

    // First touch misses and fills; the re-read hits.
    let _ = compressed.neighbors(0);
    let _ = compressed.neighbors(0);
    let warm = backend.cache_stats().unwrap();
    assert_eq!(warm.misses, 1, "one decode fill");
    assert!(warm.hits >= 1, "the re-read must hit, got {}", warm.hits);
    assert!(warm.cached_nodes >= 1 && warm.cached_bytes > 0);

    // Serving through the backend keeps counting — and `export_gauges`
    // republishes the same numbers under the metrics names the CLI
    // snapshot exposes.
    let telemetry = Telemetry::enabled();
    let svc = service(backend, Some(telemetry.clone()));
    let _ = svc.serve_batch(&requests(10), 3);
    svc.export_gauges();
    let snapshot = telemetry.metrics().snapshot();
    let gauge = |name: &str| snapshot.gauges.iter().find(|g| g.name == name).unwrap().value;
    let final_stats = compressed.cache_stats();
    assert_eq!(gauge("graph.decode_cache.hits"), final_stats.hits as f64);
    assert_eq!(gauge("graph.decode_cache.misses"), final_stats.misses as f64);
    assert_eq!(gauge("graph.decode_cache.nodes"), final_stats.cached_nodes as f64);
    assert_eq!(gauge("graph.decode_cache.bytes"), final_stats.cached_bytes as f64);
    assert!(final_stats.misses > warm.misses, "serving decoded fresh nodes");
}
