//! The edge-inference acceptance suite: the paper's Lemma 1 adversary as
//! running code, measured through the real serving path.
//!
//! Headline claims (all on the karate club at fixed seeds, through
//! `RecommendationService` batches):
//!
//! * the **non-private top-k baseline** leaks a secret edge at an
//!   advantage exceeding the Lemma-1 ceiling `(e^ε − 1)/(e^ε + 1)` for
//!   *any* ε ≤ 1 — the constructive reading of the paper's impossibility
//!   result (Lemma 1 / Theorem 2 for common neighbours);
//! * every **DP mechanism** (Exponential through the service, Laplace and
//!   smoothing through the single-draw path) keeps its empirical-ε
//!   estimate, Clopper–Pearson lower bound included, at or below its
//!   configured transcript budget;
//! * the leak (and its DP suppression) survives **`DeltaGraph` mutation
//!   epochs**: an edge insert or delete applied mid-stream through
//!   `apply_mutations` is exactly as inferable from the incremental
//!   re-serving as from static serving — and no more.
//!
//! The property block at the bottom is the attack *conformance* suite
//! (run at `PROPTEST_CASES=256` in CI): exact-likelihood normalisation,
//! antisymmetry of the reconstruction score, and the DP-consistency of
//! the empirical-ε estimator on random graphs.

use std::sync::Arc;

use proptest::prelude::*;
use psr_attack::{
    default_observers, default_secret_edge, dp_advantage_ceiling, leaking_secret_edge,
    AttackMechanism, EdgeInferenceScenario, EpochStyle, FrequencyBaseline, LikelihoodRatioMia,
    MechanismModel, ObservationModel, ReconstructionAdversary, ScenarioConfig,
};
use psr_datasets::toy::karate_club;
use psr_graph::{Graph, NodeId};
use psr_utility::{CandidateSet, CommonNeighbors, UtilityFunction};

mod common;
use common::random_graph;

/// The leaky karate scenario every headline test starts from: a secret
/// edge whose insertion makes some observer's non-private answer
/// deterministic, found by the canonical search.
fn leaky_karate(mechanism: AttackMechanism) -> ScenarioConfig {
    let graph = Arc::new(karate_club());
    let (secret, observers) =
        leaking_secret_edge(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    ScenarioConfig {
        rounds: 6,
        trials_per_world: 48,
        mechanism,
        seed: 2011, // the paper's year; fixed for the headline numbers
        ..ScenarioConfig::new(secret, observers)
    }
}

fn scenario(config: ScenarioConfig) -> EdgeInferenceScenario {
    EdgeInferenceScenario::new(karate_club(), Box::new(CommonNeighbors), config)
}

#[test]
fn non_private_topk_breaks_the_lemma1_ceiling_for_every_eps_up_to_one() {
    let s = scenario(leaky_karate(AttackMechanism::NonPrivateTopK));
    let result = s.attack(&s.collect(), &ReconstructionAdversary);

    // Lemma 1 at edit distance 1, hypothesis-testing form: an ε-DP
    // release caps any adversary's advantage at (e^ε−1)/(e^ε+1). The
    // ceiling is monotone in ε, so beating it at ε = 1 beats it for
    // every ε ≤ 1.
    let ceiling_at_one = dp_advantage_ceiling(1.0);
    assert!(
        result.advantage.advantage > ceiling_at_one,
        "non-private advantage {} must exceed the ε = 1 ceiling {ceiling_at_one}",
        result.advantage.advantage
    );
    for eps in [1.0, 0.75, 0.5, 0.25, 0.1] {
        assert!(result.advantage.advantage > dp_advantage_ceiling(eps), "ε = {eps}");
    }

    // The other face of the same trade-off: non-private serving is
    // (near-)perfectly accurate, and Corollary 1 turns that accuracy
    // into an ε floor above 1 on this utility vector.
    let comparison = s.compare(&result);
    let accuracy = comparison.mean_accuracy.expect("observers have scorable vectors");
    assert!(accuracy > 0.999, "non-private top-1 serves the argmax: {accuracy}");
    assert!(comparison.consistent, "nothing was promised, nothing is violated");
    assert!(
        comparison.epsilon_floor > 1.0,
        "measured advantage implies ε > 1, got floor {}",
        comparison.epsilon_floor
    );

    // And the empirical-ε machinery agrees: the certified lower bound
    // alone (48 trials, 95% CP) already exceeds 1.
    assert!(
        result.empirical_epsilon.lower > 1.0,
        "certified ε lower bound {} must exceed 1",
        result.empirical_epsilon.lower
    );
}

#[test]
fn every_dp_mechanism_stays_within_its_configured_epsilon() {
    let mechanisms = [
        AttackMechanism::Exponential { epsilon: 0.5 },
        AttackMechanism::Laplace { epsilon: 0.5 },
        AttackMechanism::Smoothing { x: 0.05 },
    ];
    for mechanism in mechanisms {
        let s = scenario(leaky_karate(mechanism));
        let budget = s.transcript_epsilon().expect("DP mechanisms have a budget");
        let set = s.collect();
        let adversaries: [&dyn psr_attack::Adversary; 3] = [
            &ReconstructionAdversary,
            &LikelihoodRatioMia::new(s.probe(), 7),
            &FrequencyBaseline { probe: s.probe() },
        ];
        for adversary in adversaries {
            let result = s.attack(&set, adversary);
            assert!(
                result.empirical_epsilon.lower <= budget,
                "{} vs {:?}: certified ε {} exceeds the transcript budget {budget}",
                adversary.name(),
                mechanism,
                result.empirical_epsilon.lower
            );
            let comparison = s.compare(&result);
            assert!(comparison.consistent, "{} vs {mechanism:?}", adversary.name());
        }
    }
}

#[test]
fn single_observation_exponential_stays_within_its_per_request_epsilon() {
    // The sharpest version of the budget claim: one observer, one round,
    // one slot — the transcript budget *is* the per-request ε = 0.5, and
    // even the exact likelihood-ratio adversary cannot certify more.
    let graph = Arc::new(karate_club());
    let (secret, observers) =
        leaking_secret_edge(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    let config = ScenarioConfig {
        observers: observers[..1].to_vec(),
        rounds: 1,
        trials_per_world: 64,
        mechanism: AttackMechanism::Exponential { epsilon: 0.5 },
        seed: 2011,
        ..ScenarioConfig::new(secret, observers.clone())
    };
    let s = scenario(config);
    assert_eq!(s.transcript_epsilon(), Some(0.5));
    let result = s.attack(&s.collect(), &ReconstructionAdversary);
    assert!(
        result.empirical_epsilon.lower <= 0.5,
        "certified {} > per-request ε 0.5",
        result.empirical_epsilon.lower
    );
    // The advantage obeys the per-observation Lemma-1 ceiling too (one
    // observation is one ε = 0.5 release).
    assert!(
        result.advantage.advantage <= dp_advantage_ceiling(0.5) + 0.25,
        "advantage {} implausibly above the ε = 0.5 ceiling {} (0.25 sampling slack at 64 \
         trials)",
        result.advantage.advantage,
        dp_advantage_ceiling(0.5)
    );
}

#[test]
fn edge_insert_leaks_through_incremental_reserving_when_non_private() {
    // The mutation-epoch scenario: both worlds serve the same base graph
    // for one round, then world 1 inserts the secret edge through
    // RecommendationService::apply_mutations and serving continues from
    // the warm caches. Non-private incremental re-serving leaks the
    // insert just like static serving.
    let config = ScenarioConfig {
        epochs: EpochStyle::InsertMidStream { prefix_rounds: 1 },
        ..leaky_karate(AttackMechanism::NonPrivateTopK)
    };
    let s = scenario(config);
    let set = s.collect();

    // Pre-divergence rounds are bit-identical across worlds (paired
    // seeds, same graph): whatever leaks, leaks *after* the epoch.
    let per_round = s.config().observers.len();
    for (t0, t1) in set.world0.iter().zip(&set.world1) {
        assert_eq!(t0.entries[..per_round], t1.entries[..per_round]);
    }

    let result = s.attack(&set, &ReconstructionAdversary);
    assert!(
        result.advantage.advantage > dp_advantage_ceiling(1.0),
        "insert through apply_mutations leaks past the ε = 1 ceiling: {}",
        result.advantage.advantage
    );
}

#[test]
fn dp_serving_suppresses_the_mutation_epoch_leak() {
    // Same epoched scenario at ε = 0.5: the empirical ε stays within the
    // *post-divergence* transcript budget (the identical prefix releases
    // nothing, but budgeting counts it conservatively anyway).
    for epochs in [EpochStyle::InsertMidStream { prefix_rounds: 1 }, EpochStyle::Static] {
        let config = ScenarioConfig {
            epochs,
            ..leaky_karate(AttackMechanism::Exponential { epsilon: 0.5 })
        };
        let s = scenario(config);
        let budget = s.transcript_epsilon().expect("budgeted");
        let result = s.attack(&s.collect(), &ReconstructionAdversary);
        assert!(
            result.empirical_epsilon.lower <= budget,
            "{epochs:?}: certified {} > budget {budget}",
            result.empirical_epsilon.lower
        );
    }
}

#[test]
fn edge_delete_is_as_inferable_as_edge_insert() {
    // Delete mid-stream: the base graph *contains* the secret edge and
    // world 1 removes it. Non-private serving leaks the delete too —
    // Definition 1's adjacency is symmetric, and so is the attack.
    let graph = Arc::new(karate_club());
    let (secret, observers) =
        leaking_secret_edge(&graph, &CommonNeighbors, 4, 20_000).expect("karate leaks");
    let base = {
        // Insert the secret edge up front so the scenario can delete it.
        let mut delta = psr_graph::DeltaGraph::new(Arc::clone(&graph));
        delta.apply(&psr_graph::EdgeMutation::insert(secret.0, secret.1)).unwrap();
        delta.compact()
    };
    let config = ScenarioConfig {
        epochs: EpochStyle::DeleteMidStream { prefix_rounds: 1 },
        rounds: 6,
        trials_per_world: 48,
        mechanism: AttackMechanism::NonPrivateTopK,
        seed: 2011,
        ..ScenarioConfig::new(secret, observers)
    };
    let s = EdgeInferenceScenario::new(base, Box::new(CommonNeighbors), config);
    let result = s.attack(&s.collect(), &ReconstructionAdversary);
    assert!(
        result.advantage.advantage > dp_advantage_ceiling(1.0),
        "delete through apply_mutations leaks past the ε = 1 ceiling: {}",
        result.advantage.advantage
    );
}

#[test]
fn topk_engines_charge_identical_budgets_and_leak_indistinguishably() {
    // The Gumbel-max serving engine must be a pure performance change:
    // same transcript ε by construction, and an empirical ε̂ the
    // likelihood-ratio adversary cannot tell apart from the peel engine's
    // beyond Monte-Carlo noise. This is the serve-then-measure face of
    // the chi-square conformance suite in psr-privacy.
    let config = |engine| ScenarioConfig {
        engine,
        ..leaky_karate(AttackMechanism::Exponential { epsilon: 0.5 })
    };
    let peel = scenario(config(psr_privacy::TopKEngine::Peel));
    let gumbel = scenario(config(psr_privacy::TopKEngine::Gumbel));

    // Identical composed budgets: ε accounting never looks at the engine.
    let budget = peel.transcript_epsilon().expect("budgeted");
    assert_eq!(gumbel.transcript_epsilon(), Some(budget));

    let rp = peel.attack(&peel.collect(), &ReconstructionAdversary);
    let rg = gumbel.attack(&gumbel.collect(), &ReconstructionAdversary);
    // Both engines respect the budget, with certified lower bounds.
    assert!(rp.empirical_epsilon.lower <= budget, "peel {} > {budget}", rp.empirical_epsilon.lower);
    assert!(
        rg.empirical_epsilon.lower <= budget,
        "gumbel {} > {budget}",
        rg.empirical_epsilon.lower
    );
    // Statistical indistinguishability at 48 trials/world: each engine's
    // point estimate lies within the other's Clopper–Pearson band width
    // of it (the bands at this trial count span well over a unit of ε).
    let band = (rp.empirical_epsilon.point - rp.empirical_epsilon.lower)
        .max(rg.empirical_epsilon.point - rg.empirical_epsilon.lower);
    let gap = (rp.empirical_epsilon.point - rg.empirical_epsilon.point).abs();
    assert!(
        gap <= band + 1e-9,
        "engines separated beyond Monte-Carlo resolution: peel ε̂ {} vs gumbel ε̂ {} (band {band})",
        rp.empirical_epsilon.point,
        rg.empirical_epsilon.point
    );
    // And the AUCs agree to Monte-Carlo tolerance as well.
    assert!((rp.auc - rg.auc).abs() < 0.15, "peel auc {} vs gumbel auc {}", rp.auc, rg.auc);
}

#[test]
fn reconstruction_dominates_the_weaker_adversaries_on_the_non_private_baseline() {
    // Neyman–Pearson in practice: the exact likelihood-ratio attack is at
    // least as good (in AUC) as the shadow-model MIA, which is at least
    // as informed as the plurality baseline.
    let s = scenario(leaky_karate(AttackMechanism::NonPrivateTopK));
    let set = s.collect();
    let recon = s.attack(&set, &ReconstructionAdversary);
    let mia = s.attack(&set, &LikelihoodRatioMia::new(s.probe(), 7));
    let freq = s.attack(&set, &FrequencyBaseline { probe: s.probe() });
    assert!(
        recon.auc + 1e-9 >= mia.auc,
        "reconstruction {} must not lose to MIA {}",
        recon.auc,
        mia.auc
    );
    assert!(recon.auc + 1e-9 >= freq.auc, "… nor to plurality {}", freq.auc);
    assert!(recon.auc > 0.9, "the exact attack separates the worlds: {}", recon.auc);
}

// =====================================================================
// Attack conformance properties (CI: PROPTEST_CASES=256)
// =====================================================================

/// Enumerates all length-`k` ordered pick sequences over `nodes`.
fn sequences(nodes: &[NodeId], k: usize) -> Vec<Vec<NodeId>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for &v in nodes {
        let rest: Vec<NodeId> = nodes.iter().copied().filter(|&w| w != v).collect();
        for mut tail in sequences(&rest, k - 1) {
            let mut seq = vec![v];
            seq.append(&mut tail);
            out.push(seq);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The peeling likelihood is a probability distribution: over every
    /// ordered top-k output of a random target, the exact log-probs sum
    /// to 1. This is the correctness anchor of the reconstruction
    /// adversary (and transitively of the empirical-ε numbers).
    #[test]
    fn exponential_topk_log_prob_normalises(
        graph in random_graph(10, 12),
        target in 0u32..10,
        k in 1usize..3,
        eps_index in 0usize..4,
    ) {
        let eps = [0.0, 0.4, 1.7, 25.0][eps_index];
        let candidates = CandidateSet::for_target(&graph, target);
        prop_assume!(candidates.len() >= k && candidates.len() <= 7);
        let utilities = CommonNeighbors.utilities(&graph, target, &candidates);
        let model = ObservationModel {
            utilities,
            mechanism: MechanismModel::Exponential { epsilon: eps, sensitivity: 1.0 },
            candidates,
        };
        let ids: Vec<NodeId> = model.candidates.iter().collect();
        let total: f64 =
            sequences(&ids, k).iter().map(|seq| model.log_prob(seq).exp()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total} (k={k}, eps={eps})");
    }

    /// Swapping the hypothesis order negates the reconstruction score:
    /// the adversary has no built-in bias toward either world.
    #[test]
    fn reconstruction_score_is_antisymmetric_in_the_worlds(
        graph in random_graph(12, 14),
        seed in 0u64..1000,
    ) {
        let graph = Arc::new(graph);
        let secret = match default_secret_edge(&graph) {
            Some(pair) => pair,
            None => return Ok(()),
        };
        let observers = usable_observers(&graph, secret, 3);
        prop_assume!(!observers.is_empty());
        let config = ScenarioConfig {
            rounds: 2,
            trials_per_world: 2,
            seed,
            threads: Some(1),
            mechanism: AttackMechanism::Exponential { epsilon: 1.0 },
            ..ScenarioConfig::new(secret, observers)
        };
        let s = EdgeInferenceScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config);
        let (w0, w1) = s.world_models();
        let set = s.collect();
        for t in set.world0.iter().chain(&set.world1) {
            let fwd = psr_attack::Adversary::score(&ReconstructionAdversary, t, w0, w1);
            let bwd = psr_attack::Adversary::score(&ReconstructionAdversary, t, w1, w0);
            prop_assert!((fwd + bwd).abs() < 1e-6, "fwd {fwd} bwd {bwd}");
        }
    }

    /// DP consistency of the estimator: on a random graph served by the
    /// ε = 1 Exponential mechanism, the certified empirical-ε lower
    /// bound never exceeds the composed transcript budget. (At 12 trials
    /// the Clopper–Pearson construction can certify at most ≈ 1.03, so
    /// any budget of ≥ 2 observations has provable headroom — the suite
    /// checks the *estimator*, the karate tests check the mechanisms.)
    #[test]
    fn empirical_epsilon_never_exceeds_the_composed_budget(
        graph in random_graph(12, 14),
        seed in 0u64..1000,
    ) {
        let graph = Arc::new(graph);
        let secret = match default_secret_edge(&graph) {
            Some(pair) => pair,
            None => return Ok(()),
        };
        let observers = usable_observers(&graph, secret, 2);
        prop_assume!(!observers.is_empty());
        let config = ScenarioConfig {
            rounds: 2,
            trials_per_world: 12,
            seed,
            threads: Some(2),
            mechanism: AttackMechanism::Exponential { epsilon: 1.0 },
            ..ScenarioConfig::new(secret, observers)
        };
        let s = EdgeInferenceScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config);
        let budget = s.transcript_epsilon().expect("budgeted");
        let set = s.collect();
        for adversary in [
            &ReconstructionAdversary as &dyn psr_attack::Adversary,
            &FrequencyBaseline { probe: s.probe() },
        ] {
            let result = s.attack(&set, adversary);
            prop_assert!(
                result.empirical_epsilon.lower <= budget,
                "{}: certified {} > budget {budget}",
                adversary.name(),
                result.empirical_epsilon.lower
            );
        }
    }

    /// Harness determinism: the same scenario collected on 1 and 3
    /// worker threads produces identical transcripts and scores.
    #[test]
    fn harness_is_deterministic_across_thread_counts(
        graph in random_graph(10, 10),
        seed in 0u64..1000,
    ) {
        let graph = Arc::new(graph);
        let secret = match default_secret_edge(&graph) {
            Some(pair) => pair,
            None => return Ok(()),
        };
        let observers = usable_observers(&graph, secret, 2);
        prop_assume!(!observers.is_empty());
        let config = |threads| ScenarioConfig {
            rounds: 2,
            trials_per_world: 5,
            seed,
            threads: Some(threads),
            mechanism: AttackMechanism::Exponential { epsilon: 0.8 },
            ..ScenarioConfig::new(secret, observers.clone())
        };
        let a = EdgeInferenceScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config(1));
        let b = EdgeInferenceScenario::new(
            Arc::clone(&graph), Box::new(CommonNeighbors), config(3));
        prop_assert_eq!(a.collect(), b.collect());
    }
}

/// Observers adjacent to the secret's first endpoint that keep a
/// non-empty candidate set in both worlds (scenario preconditions).
fn usable_observers(graph: &Arc<Graph>, secret: (NodeId, NodeId), cap: usize) -> Vec<NodeId> {
    default_observers(graph, secret, cap + 4)
        .into_iter()
        .filter(|&t| {
            // At least 2 spare candidates in the base graph keeps the
            // set non-empty after the secret edge toggles near it.
            CandidateSet::for_target(graph.as_ref(), t).len() >= 2
        })
        .take(cap)
        .collect()
}
