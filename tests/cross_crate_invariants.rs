//! Invariants that only hold when the crates compose correctly.

use proptest::prelude::*;
use psr_bounds::best_accuracy_bound;
use psr_core::{evaluate_target, ExperimentConfig};
use psr_datasets::toy::karate_club;
use psr_privacy::audit::audit_exact;
use psr_privacy::ExponentialMechanism;
use psr_utility::{CandidateSet, CommonNeighbors, SensitivityNorm, UtilityFunction, WeightedPaths};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The Corollary-1 ceiling dominates the Exponential mechanism's achieved
/// accuracy for every karate-club target under both paper utilities.
#[test]
fn bound_dominates_mechanism_everywhere() {
    let g = karate_club();
    let config = ExperimentConfig { eval_laplace: false, ..Default::default() };
    let utilities: Vec<Box<dyn UtilityFunction>> =
        vec![Box::new(CommonNeighbors), Box::new(WeightedPaths::paper(0.005))];
    for utility in &utilities {
        let sens = utility.sensitivity(&g).unwrap().value(SensitivityNorm::L1);
        for target in g.nodes() {
            let mut r = rng(target as u64);
            if let Some(e) = evaluate_target(&g, utility.as_ref(), &config, sens, target, &mut r) {
                assert!(
                    e.accuracy_exponential <= e.accuracy_bound + 0.02,
                    "{}: target {target} exp {} > bound {}",
                    utility.name(),
                    e.accuracy_exponential,
                    e.accuracy_bound
                );
            }
        }
    }
}

/// DP audit through the *entire* pipeline: toggling a random non-target
/// edge of the karate club changes the Exponential mechanism's output
/// distribution by at most e^ε, with ε as configured.
#[test]
fn pipeline_level_dp_audit() {
    let g = karate_club();
    let eps = 0.7;
    let cn = CommonNeighbors;
    let sens = cn.sensitivity(&g).unwrap().value(SensitivityNorm::L1);
    let target = 0u32;
    let candidates = CandidateSet::for_target(&g, target);
    let mech = ExponentialMechanism::paper();

    let dist = |graph: &psr_graph::Graph| -> Vec<f64> {
        let u = cn.utilities(graph, target, &candidates);
        let (probs, zero_each) = mech.probabilities(&u, eps, sens);
        candidates
            .iter()
            .map(|v| match u.nonzero().binary_search_by_key(&v, |&(n, _)| n) {
                Ok(i) => probs[i],
                Err(_) => zero_each,
            })
            .collect()
    };

    let base = dist(&g);
    // Try every non-incident edge toggle among a node sample.
    for a in [2u32, 9, 15, 25, 33] {
        for b in [5u32, 12, 20, 30] {
            if a == b || a == target || b == target {
                continue;
            }
            let mut m = psr_graph::MutableGraph::from(&g);
            m.toggle_edge(a, b).unwrap();
            let flipped = dist(&m.freeze());
            let audit = audit_exact(&base, &flipped, eps, 1e-9);
            assert!(audit.holds, "toggle ({a},{b}): log-ratio {} > ε {eps}", audit.max_log_ratio);
        }
    }
}

/// Exchangeability survives the full stack: relabelling the graph relabels
/// recommendations' *distribution* but not the achieved accuracy.
#[test]
fn accuracy_is_isomorphism_invariant() {
    let g = karate_club();
    // Swap labels of nodes 5 and 20 (neither is the target 0).
    let perm: Vec<u32> = (0..34u32)
        .map(|v| {
            if v == 5 {
                20
            } else if v == 20 {
                5
            } else {
                v
            }
        })
        .collect();
    let edges: Vec<(u32, u32)> =
        g.edges().map(|(u, v)| (perm[u as usize], perm[v as usize])).collect();
    let h = psr_graph::undirected_from_edges(edges).unwrap();

    let config = ExperimentConfig { eval_laplace: false, ..Default::default() };
    let sens = CommonNeighbors.sensitivity(&g).unwrap().l1;
    let a = evaluate_target(&g, &CommonNeighbors, &config, sens, 0, &mut rng(1)).unwrap();
    let b = evaluate_target(&h, &CommonNeighbors, &config, sens, 0, &mut rng(1)).unwrap();
    assert!((a.accuracy_exponential - b.accuracy_exponential).abs() < 1e-12);
    assert!((a.accuracy_bound - b.accuracy_bound).abs() < 1e-12);
    assert_eq!(a.t, b.t);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accuracy and bound stay in [0, 1] and the bound stays dominant on
    /// random graphs (not just the karate club).
    #[test]
    fn invariants_on_random_graphs(
        edges in prop::collection::vec((0u32..16, 0u32..16), 8..40),
        eps in 0.2f64..3.0,
    ) {
        let edges: Vec<(u32, u32)> =
            edges.into_iter().filter(|(u, v)| u != v).collect();
        prop_assume!(!edges.is_empty());
        let g = psr_graph::GraphBuilder::new(psr_graph::Direction::Undirected)
            .add_edges(edges)
            .with_num_nodes(16)
            .build()
            .unwrap();
        let config = ExperimentConfig { epsilon: eps, eval_laplace: false, ..Default::default() };
        let sens = CommonNeighbors.sensitivity(&g).unwrap().l1;
        for target in g.nodes() {
            let mut r = rng(target as u64);
            if let Some(e) =
                evaluate_target(&g, &CommonNeighbors, &config, sens, target, &mut r)
            {
                prop_assert!((0.0..=1.0).contains(&e.accuracy_exponential));
                prop_assert!((0.0..=1.0).contains(&e.accuracy_bound));
                prop_assert!(e.accuracy_exponential <= e.accuracy_bound + 0.05);
                // The t formula must agree with the bounds-crate free fn.
                let expected_t = psr_bounds::edit_distance::t_common_neighbors(
                    e.u_max as u64,
                    e.degree as u64,
                );
                prop_assert_eq!(e.t, expected_t);
            }
        }
    }

    /// best_accuracy_bound is monotone in ε (more privacy budget can only
    /// raise the ceiling).
    #[test]
    fn bound_monotone_in_eps(
        utilities in prop::collection::vec(1u32..20, 1..8),
        zeros in 10usize..500,
    ) {
        let sparse: Vec<(u32, f64)> = utilities
            .iter()
            .enumerate()
            .map(|(i, &u)| (i as u32, u as f64))
            .collect();
        let u = psr_utility::UtilityVector::from_sparse(sparse, zeros);
        let mut prev = 0.0;
        for eps in [0.1, 0.5, 1.0, 2.0, 4.0] {
            let b = best_accuracy_bound(&u, eps, 5, None).accuracy_bound;
            prop_assert!(b >= prev - 1e-12, "bound shrank: {b} < {prev} at eps {eps}");
            prev = b;
        }
    }
}
