//! Shared fixtures for the root attack conformance suites
//! (`tests/attack.rs`, `tests/node_privacy.rs`).

use proptest::prelude::*;
use psr_graph::{Direction, Graph, GraphBuilder};

/// Strategy: a random connected-ish undirected ER graph on `n` nodes.
pub fn random_graph(n: u32, extra_edges: usize) -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..n, 0..n), n as usize..n as usize + extra_edges).prop_map(
        move |pairs| {
            let mut builder = GraphBuilder::new(Direction::Undirected);
            // A Hamiltonian-ish spine keeps most nodes usable as
            // observers; random pairs add structure.
            for v in 1..n {
                builder.push_edge(v - 1, v);
            }
            for (u, v) in pairs {
                if u != v {
                    builder.push_edge(u, v);
                }
            }
            builder.with_num_nodes(n as usize).build().expect("simple graph")
        },
    )
}
